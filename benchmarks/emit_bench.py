"""Emit a perf snapshot (``BENCH_<n>.json``) of per-algorithm map times.

Runs the Figure 3 harness sweep (the Figure 2 runs carry the timing
data) on the profile selected by ``REPRO_PROFILE`` (default ``ci``) and
writes geometric-mean mapping times per algorithm — overall and per
processor count — so the repo's performance trajectory is tracked commit
over commit.

Since the parallel execution engine the snapshot also carries a
``batch_throughput`` section: the same Fig. 3 sweep expressed as one
request list and pushed through ``MappingService.map_batch`` on every
backend (``serial`` reference, ``thread``/``process`` at several worker
counts), reporting requests/sec and the speedup over sequential
execution.  Each measurement runs on a fresh service (cold caches) so
the backends compete on equal footing.

Since the serving layer the section additionally carries a
``persistent`` block: the sweep served *repeatedly* through one
long-lived :class:`~repro.api.pool.ExecutorPool` (fresh front-end
service per batch, pool + store kept hot), reporting per-batch and
amortized wall time — the number a job-launch-time mapping service
actually pays.  The sweep itself includes the HIER/SFC families next
to the paper's seven algorithms, and ``cpus`` records the *usable*
(affinity-respecting) CPU count so snapshots from quota-limited
containers read correctly.

Since the network front end the snapshot also carries a ``serving``
section (measured by ``benchmarks/serve_load.py``): closed-loop client
load against the TCP server under nominal provisioning, under forced
overload (admission-control shedding) and as a synchronized identical
burst (request coalescing), with exact p50/p95/p99 latency per phase.
``compare_bench.py --gate-tail`` gates on its structural invariants.

Since the zero-copy artifact plane the snapshot also carries an ``ipc``
section: per-tier (disk vs shared-memory) artifact publish/load
latencies over representative artifact shapes — every timed load runs
on a fresh reader store and touches all array bytes, so lazy mmap reads
cannot hide I/O — plus a ``warm_process_batch`` block proving a warm
pooled batch under the shm tier performs zero artifact disk reads.
``compare_bench.py --gate-ipc`` gates on both.

Since multi-host sharding the snapshot also carries a ``dist`` section:
the sweep run serially and then sharded across two loopback
:class:`~repro.dist.host.HostServer` processes behind one remote
artifact store, reporting dispatch throughput, the speedup (bounded by
CPU sharing on one machine — the gate checks overhead and correctness,
not scaling), router placement stats, and whether the sharded mappings
are byte-identical to the serial reference.  ``compare_bench.py
--gate-dist`` gates on identity and zero errors.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py [output.json]

The default output name is ``BENCH_<n>.json`` in the repository root,
where ``<n>`` is one past the highest existing snapshot index.
``benchmarks/compare_bench.py`` diffs two snapshots and fails on large
geo-mean regressions (the scheduled CI job runs it against the latest
committed snapshot).
"""

from __future__ import annotations

import json
import os
import platform
import re
import sys
import tempfile
import time

import numpy as np
import serve_load

from repro.analysis.stats import geometric_mean
from repro.api.cache import ArtifactCache
from repro.api.executor import default_workers
from repro.api.pool import ExecutorPool
from repro.api.request import MapRequest
from repro.api.service import MappingService
from repro.api.shm import make_store, shm_available
from repro.experiments.fig2 import run_fig2, sweep_requests
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import profile_from_env
from repro.kernels.backend import backend_info, numba_available, use_backend, warm_up
from repro.mapping.pipeline import FAMILY_MAPPER_NAMES, MAPPER_NAMES
from repro.topology.routing import RouteTable, routes_bulk
from repro.topology.torus import Torus3D

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Pool widths measured for the thread/process backends.
WORKER_COUNTS = (2, 4)

#: Batches served through one persistent pool per measurement; batch 1
#: pays spawn + warm-up, the rest show the amortized steady state.
PERSISTENT_BATCHES = 3

#: Snapshot sweep: the paper's seven algorithms + the registered
#: families, so HIER/SFC get Figure 3 entries commit over commit.
BENCH_MAPPERS = MAPPER_NAMES + FAMILY_MAPPER_NAMES


def next_snapshot_path() -> str:
    taken = [
        int(m.group(1))
        for name in os.listdir(REPO_ROOT)
        if (m := re.fullmatch(r"BENCH_(\d+)\.json", name))
    ]
    return os.path.join(REPO_ROOT, f"BENCH_{max(taken, default=0) + 1}.json")


def measure_batch_throughput(profile, cache: WorkloadCache) -> dict:
    """Requests/sec of the sweep per backend, on fresh (cold) services.

    ``sweep_requests`` is the same constructor ``run_fig2`` maps with,
    so the throughput numbers describe exactly the sweep the map-time
    section times.  The spawn-per-call backends pay pool spawn + store
    warm-up on every batch; the ``persistent`` block amortizes both
    over :data:`PERSISTENT_BATCHES` repeats through one
    :class:`ExecutorPool` (fresh front-end service each batch, pool and
    store kept hot — the serving layer's steady state).
    """
    requests = sweep_requests(profile, cache, mappers=BENCH_MAPPERS)

    def run(backend: str, workers) -> dict:
        service = MappingService()
        t0 = time.perf_counter()
        responses = service.map_batch(requests, backend=backend, workers=workers)
        elapsed = time.perf_counter() - t0
        assert len(responses) == len(requests) * len(BENCH_MAPPERS)
        return {
            "elapsed_s": elapsed,
            "requests_per_s": len(requests) / elapsed,
        }

    out = {"requests": len(requests), "algorithms_per_request": len(BENCH_MAPPERS)}
    out["serial"] = run("serial", None)
    serial_s = out["serial"]["elapsed_s"]
    for backend in ("thread", "process"):
        out[backend] = {}
        for workers in WORKER_COUNTS:
            m = run(backend, workers)
            m["speedup_vs_serial"] = serial_s / m["elapsed_s"]
            out[backend][str(workers)] = m

    out["persistent"] = {}
    for backend in ("thread", "process"):
        out["persistent"][backend] = {}
        for workers in WORKER_COUNTS:
            per_batch = []
            with ExecutorPool(backend, workers=workers) as pool:
                for _ in range(PERSISTENT_BATCHES):
                    service = MappingService(
                        cache=ArtifactCache(store=pool.store), pool=pool
                    )
                    t0 = time.perf_counter()
                    responses = service.map_batch(requests)
                    per_batch.append(time.perf_counter() - t0)
                    assert len(responses) == len(requests) * len(BENCH_MAPPERS)
            amortized = sum(per_batch) / len(per_batch)
            spawn_ref = out[backend][str(workers)]["elapsed_s"]
            out["persistent"][backend][str(workers)] = {
                "batches": PERSISTENT_BATCHES,
                "per_batch_s": per_batch,
                "first_batch_s": per_batch[0],
                "warm_batch_s": min(per_batch[1:]),
                "amortized_elapsed_s": amortized,
                "requests_per_s": len(requests) / amortized,
                "speedup_vs_serial": serial_s / amortized,
                # vs paying spawn + cold store on every batch (same
                # backend, same width) — the serving layer's headline.
                "speedup_vs_spawn_per_call": spawn_ref / amortized,
            }
    return out


#: Timing repetitions per kernel; the minimum is reported (the standard
#: microbenchmark estimator: least-interfered-with run).
KERNEL_REPS = 20

#: Dead-link fractions of the degraded-machine routing sweep.
DEGRADED_FRACTIONS = (0.0, 0.01, 0.05)


def _kernel_workloads() -> dict:
    """``name -> zero-arg callable`` over each escalated hot kernel.

    Workload shapes mirror ``benchmarks/test_perf_kernels.py`` (960-node
    torus, 256-task graphs, Δ=8 candidate batches).  The callables
    dispatch through :func:`repro.kernels.backend.get_backend` at call
    time, so one workload set serves every backend measurement.
    """
    from repro.graph.csr import expand_frontier
    from repro.graph.task_graph import TaskGraph
    from repro.kernels import batched_swap_gains, hop_table_for, task_whops_many
    from repro.kernels.congestion import CongestionModel

    rng = np.random.default_rng(7)
    torus = Torus3D((12, 10, 8))
    table = hop_table_for(torus)
    a = rng.integers(0, torus.num_nodes, size=10_000)
    b = rng.integers(0, torus.num_nodes, size=10_000)

    gm = torus.graph()
    frontier = np.arange(0, torus.num_nodes, 97, dtype=np.int64)

    n = 256
    src = rng.integers(0, n, size=2500)
    dst = rng.integers(0, n, size=2500)
    keep = src != dst
    vol = rng.integers(1, 20, size=2500).astype(np.float64)
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], vol[keep])
    sym = tg.symmetrized()
    gamma = rng.choice(torus.num_nodes, size=n, replace=False).astype(np.int64)
    partners = np.asarray([3, 17, 42, 88, 101, 150, 199, 230], dtype=np.int64)
    whops0 = float(
        task_whops_many(sym, table, gamma, np.asarray([0], dtype=np.int64))[0]
    )
    src_t, dst_t, vols = tg.graph.edge_list()
    model = CongestionModel(torus, src_t, dst_t, vols, gamma)

    m = 2500
    rsrc = rng.integers(0, torus.num_nodes, size=m)
    rdst = rng.integers(0, torus.num_nodes, size=m)
    rtable = RouteTable.build(torus, rsrc, rdst)
    volumes = rng.integers(1, 20, size=m).astype(np.float64)
    pairs = np.unique(rng.integers(0, m, size=64))
    links, msg = routes_bulk(torus, rdst[pairs], rsrc[pairs])
    order = np.argsort(msg, kind="stable")
    counts = np.bincount(msg, minlength=pairs.size)
    new_links, new_counts = links[order], counts

    def one_level():
        seen = np.zeros(gm.num_vertices, dtype=bool)
        seen[frontier] = True
        return expand_frontier(gm, frontier, seen)

    return {
        "pairwise_hops": lambda: table.pairwise_hops(a, b),
        "expand_frontier": one_level,
        "swap_gains": lambda: batched_swap_gains(
            sym, table, gamma, 0, partners, whops_t1=whops0
        ),
        "evaluate_swaps": lambda: model.evaluate_swaps(0, partners),
        "comm_index_refresh": model._refresh_comm_index,
        "accumulate_loads": lambda: rtable.accumulate(volumes),
        "splice_routes": lambda: rtable.replace_routes(pairs, new_links, new_counts),
    }


def measure_kernel_backends() -> dict:
    """Per-kernel NumPy-vs-numba timings (the ``kernel_backends`` section).

    Each backend is installed process-wide and warmed first, so the
    numba column times steady-state compiled code — the latency a
    pre-warmed pool worker pays — never JIT compilation.  Without numba
    the native column stays null and ``compare_bench.py --gate-native``
    skips; PERFORMANCE.md documents that case.
    """
    workloads = _kernel_workloads()
    out = {
        "numba_available": numba_available(),
        "active": backend_info(),
        "kernels": {name: {"numpy_s": None, "numba_s": None} for name in workloads},
        "warmup": None,
    }
    backends = ["numpy"] + (["numba"] if numba_available() else [])
    for backend in backends:
        with use_backend(backend) as be:
            record = warm_up(be)
            if backend == "numba":
                out["warmup"] = record
            for name, fn in workloads.items():
                best = min(
                    _timed(fn) for _ in range(KERNEL_REPS)
                )
                out["kernels"][name][f"{backend}_s"] = best
    for m in out["kernels"].values():
        m["speedup"] = (
            m["numpy_s"] / m["numba_s"] if m["numpy_s"] and m["numba_s"] else None
        )
    return out


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


#: Load/publish repetitions per (tier, artifact); minimum reported.
IPC_REPS = 7


def _ipc_artifacts() -> dict:
    """``name -> value`` spanning the artifact shapes the engine stores.

    Sizes bracket real traffic: a grouping-sized int vector, a
    route-table-scale CSR pair, and a multi-megabyte matrix block, plus
    a nested dict exercising the pickle-5 out-of-band path.
    """
    rng = np.random.default_rng(17)
    return {
        "grouping-64KB": rng.integers(0, 512, size=8_192).astype(np.int64),
        "routes-1MB": {
            "ptr": np.arange(65_537, dtype=np.int64),
            "links": rng.integers(0, 6, size=65_536 * 2).astype(np.int32),
        },
        "block-8MB": rng.standard_normal((1024, 1024)),
        "nested-oob": {
            "payload": (rng.standard_normal(50_000), [1, "x", None]),
            "meta": {"k": 3},
        },
    }


def measure_ipc(tmp_root: str) -> dict:
    """Per-tier artifact publish/load latencies (the ``ipc`` section).

    For each tier a writer store publishes every artifact once; each
    timed load then runs on a *fresh* reader store (cold attachment,
    empty mmap cache) and touches every array byte (``.sum()``), so the
    disk tier's lazy mmap reads cannot win by deferring I/O the shm
    tier actually performs.  ``--gate-ipc`` requires the shm tier to
    beat disk on the load geo-mean, and the ``warm_process_batch``
    block to show a pooled warm batch doing zero artifact disk reads.
    """
    out = {"shm_available": shm_available(), "reps": IPC_REPS, "tiers": {}}
    artifacts = _ipc_artifacts()
    tiers = ["disk"] + (["shm"] if shm_available() else [])
    for tier in tiers:
        root = os.path.join(tmp_root, f"ipc-{tier}")
        writer = make_store(root, tier=tier, owner=True)
        entry = {"artifacts": {}}
        try:
            for name, value in artifacts.items():
                # Unique key per rep: both tiers are content-addressed
                # and skip re-publishing an existing key, so reusing one
                # key would time the skip, not the publish.
                best_save = min(
                    _timed(
                        lambda key=f"{name}@{rep}": writer.save(
                            "grouping", key, value
                        )
                    )
                    for rep in range(IPC_REPS)
                )
                writer.save("grouping", name, value)
                best_load = None
                for _ in range(IPC_REPS):
                    reader = make_store(root, tier=tier, owner=False)
                    t0 = time.perf_counter()
                    loaded = reader.load("grouping", name)
                    _touch_arrays(loaded)
                    elapsed = time.perf_counter() - t0
                    del loaded
                    if hasattr(reader, "close"):
                        reader.close()
                    best_load = elapsed if best_load is None else min(best_load, elapsed)
                entry["artifacts"][name] = {
                    "save_s": best_save,
                    "load_s": best_load,
                }
            entry["load_geo_mean_s"] = geometric_mean(
                [m["load_s"] for m in entry["artifacts"].values()]
            )
        finally:
            if hasattr(writer, "close"):
                writer.close()
        out["tiers"][tier] = entry

    if shm_available():
        out["warm_process_batch"] = _measure_warm_batch(
            os.path.join(tmp_root, "ipc-warm")
        )
    return out


def _touch_arrays(value) -> None:
    """Force every array byte resident (defeats lazy mmap reads)."""
    if isinstance(value, np.ndarray):
        if value.size:
            value.sum()
    elif isinstance(value, dict):
        for v in value.values():
            _touch_arrays(v)
    elif isinstance(value, (list, tuple)):
        for v in value:
            _touch_arrays(v)


def _measure_warm_batch(store_dir: str) -> dict:
    """Cold vs warm pooled process batch under the shm tier.

    The warm batch runs against respawned workers (cold private caches)
    whose only artifact sources are the shm segments — the parent's
    disk-load counter staying at zero is the measured zero-disk claim
    ``--gate-ipc`` checks.
    """
    from repro.graph.task_graph import TaskGraph
    from repro.topology.allocation import AllocationSpec, SparseAllocator

    rng = np.random.default_rng(7)
    torus = Torus3D((2, 2, 2))
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=8, procs_per_node=2, fragmentation=0.3, seed=4)
    )
    n, m = 16, 90
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], rng.uniform(1, 5, keep.sum()))
    requests = [
        MapRequest(
            task_graph=tg,
            machine=machine,
            algorithms=("UG", "UWH"),
            seed=3,
            tag=f"r{i}",
        )
        for i in range(2)
    ]
    with ExecutorPool(
        "process", workers=2, store_dir=store_dir, store_tier="shm"
    ) as pool:
        service = MappingService(pool=pool)
        t0 = time.perf_counter()
        service.map_batch(requests)
        cold_s = time.perf_counter() - t0
        pool.respawn()
        t0 = time.perf_counter()
        service.map_batch(requests)
        warm_s = time.perf_counter() - t0
        stats = pool.stats()["store"]
        return {
            "store_tier": stats.get("tier"),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "parent_disk_loads": stats.get("disk", {}).get("loads"),
            "batch_disk_files": pool.store.file_count("batch"),
            "shm_publishes": stats.get("shm", {}).get("publishes"),
            "shm_segment_bytes": stats.get("shm", {}).get("segment_bytes"),
        }


def measure_degraded_sweep() -> dict:
    """BFS-detour routing cost on degraded machines (``degraded`` section).

    One 8×8×8 torus, one fixed random pair set, increasing dead-link
    fractions: route-table build time, route-length inflation over the
    healthy geometric distance, and the fraction of pairs whose route
    detours at all.  Tracks the fault-avoiding router's overhead
    trajectory commit over commit.
    """
    rng = np.random.default_rng(29)
    torus = Torus3D((8, 8, 8))
    m = 2000
    src = rng.integers(0, torus.num_nodes, size=m)
    dst = rng.integers(0, torus.num_nodes, size=m)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    base_hops = torus.hop_distance(src, dst)
    num_links = torus.num_nodes * 6
    out = {"torus": list(torus.dims), "pairs": int(src.size), "fractions": {}}
    for frac in DEGRADED_FRACTIONS:
        n_dead = int(round(frac * num_links))
        degraded = (
            torus.with_failures(
                dead_links=rng.choice(num_links, size=n_dead, replace=False)
            )
            if n_dead
            else torus
        )
        t0 = time.perf_counter()
        table = RouteTable.build(degraded, src, dst)
        build_s = time.perf_counter() - t0
        lengths = np.diff(table.ptr)
        out["fractions"][str(frac)] = {
            "dead_links": n_dead,
            "build_s": build_s,
            "total_hops": int(lengths.sum()),
            # >1.0 means detours: extra hops paid to route around faults.
            "length_inflation": float(lengths.sum() / base_hops.sum()),
            "affected_pair_fraction": float((lengths > base_hops).mean()),
        }
    return out


def measure_dist() -> dict:
    """Sharded dispatch vs serial over loopback hosts (``dist`` section).

    Spins up one :class:`~repro.dist.remote.ArtifactStoreServer` and two
    :class:`~repro.dist.host.HostServer` processes on the loopback
    interface, runs the same multi-workload batch serially and sharded,
    and records throughput, speedup, byte-identity of the mappings
    (``MapResponse.fingerprint()``), and the router's placement stats.
    Loopback hosts share the coordinator's CPUs, so the headline here is
    dispatch overhead staying small and results staying identical — not
    wall-clock speedup (that needs real second machines).
    """
    from repro.api.executor import _collect
    from repro.api.plan import build_plan
    from repro.dist import ArtifactStoreServer, HostServer
    from repro.dist.coordinator import run_sharded
    from repro.experiments.fig2 import sweep_requests
    from repro.experiments.profiles import profile_from_env

    profile = profile_from_env(default="ci")
    cache = WorkloadCache(profile)
    requests = sweep_requests(profile, cache, mappers=("UG", "UWH"))
    plan = build_plan(requests)

    service = MappingService()
    t0 = time.perf_counter()
    serial = service.map_batch(requests)
    serial_s = time.perf_counter() - t0

    out = {
        "requests": len(requests),
        "nodes": len(plan.nodes),
        "hosts": 2,
        "serial": {
            "elapsed_s": serial_s,
            "requests_per_s": len(requests) / serial_s,
        },
    }
    with tempfile.TemporaryDirectory(prefix="repro-dist-") as root:
        store_srv = ArtifactStoreServer(os.path.join(root, "store")).start()
        remote = "%s:%d" % store_srv.address
        hosts = []
        try:
            for i in range(2):
                host = HostServer(
                    store_remote=remote,
                    store_dir=os.path.join(root, f"host{i}"),
                    store_tier="auto" if shm_available() else "disk",
                    capacity=max(1, default_workers() // 2),
                )
                host.start()
                hosts.append(host)
            addresses = ["%s:%d" % h.address for h in hosts]
            stats = {}
            t0 = time.perf_counter()
            outcomes = run_sharded(
                plan,
                MappingService(),
                addresses,
                store_remote=remote,
                stats_out=stats,
            )
            sharded_s = time.perf_counter() - t0
            responses = _collect(plan, outcomes)
            out["sharded"] = {
                "elapsed_s": sharded_s,
                "requests_per_s": len(requests) / sharded_s,
                "speedup_vs_serial": serial_s / sharded_s,
                "errors": sum(1 for r in responses if r.error is not None),
                "byte_identical": (
                    [r.fingerprint() for r in responses]
                    == [r.fingerprint() for r in serial]
                ),
                "router": stats.get("router"),
                "hosts_lost": stats.get("hosts_lost"),
                "nodes_run_per_host": {
                    h.stats()["host_id"]: h.stats()["nodes_run"] for h in hosts
                },
            }
        finally:
            for h in hosts:
                h.stop()
            store_srv.stop()
    return out


def main(argv) -> str:
    out_path = argv[1] if len(argv) > 1 else next_snapshot_path()
    # Fail on an unwritable destination *before* the minutes-long sweep,
    # without leaving a stray empty snapshot behind if the sweep dies.
    existed = os.path.exists(out_path)
    with open(out_path, "a"):
        pass
    try:
        profile = profile_from_env(default="ci")
        cache = WorkloadCache(profile)
        result = run_fig2(profile, cache, mappers=BENCH_MAPPERS)
        throughput = measure_batch_throughput(profile, cache)
        serving = serve_load.measure_serving()
        kernel_backends = measure_kernel_backends()
        degraded = measure_degraded_sweep()
        with tempfile.TemporaryDirectory(prefix="repro-ipc-") as tmp_root:
            ipc = measure_ipc(tmp_root)
        dist = measure_dist()
    except BaseException:
        if not existed:
            os.unlink(out_path)
        raise

    per_procs = {
        str(procs): {a: result.times[(procs, a)] for a in BENCH_MAPPERS}
        for procs in result.proc_counts
    }
    overall = {
        a: geometric_mean([result.times[(p, a)] for p in result.proc_counts])
        for a in BENCH_MAPPERS
    }
    snapshot = {
        "profile": profile.name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        # Parallel-backend speedups are bounded by this: a 1-CPU host
        # can only show engine overhead, not scaling.  Usable CPUs
        # (cgroup/affinity-aware), not the host's physical count.
        "cpus": default_workers(),
        "cpus_total": os.cpu_count(),
        "geo_mean_map_time_s": overall,
        "geo_mean_map_time_s_by_procs": per_procs,
        # map_batch requests/sec per backend (parallel execution engine).
        "batch_throughput": throughput,
        # Network front end: tail latency under nominal/overload load
        # plus the coalescing burst (benchmarks/serve_load.py).
        "serving": serving,
        # Per-kernel NumPy-vs-numba timings (null native entries mean
        # numba was not installed where this snapshot was emitted).
        "kernel_backends": kernel_backends,
        # Fault-avoiding router overhead vs dead-link fraction.
        "degraded": degraded,
        # Artifact-plane transfer latencies per store tier (disk vs
        # shared memory) and the warm pooled batch's zero-disk proof.
        "ipc": ipc,
        # Multi-host sharding over loopback hosts: dispatch overhead
        # and byte-identity vs the serial reference.
        "dist": dist,
        # Shared-artifact reuse during the sweep (MappingService batching).
        "artifact_cache": {
            ns: {"hits": s.hits, "misses": s.misses, "size": s.size}
            for ns, s in cache.artifacts.stats().items()
        },
    }
    with open(out_path, "w") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")
    for a in BENCH_MAPPERS:
        print(f"  {a:>6s}: {overall[a] * 1e3:8.2f} ms")
    print(
        f"  batch: {throughput['requests']} requests, "
        f"serial {throughput['serial']['elapsed_s']:.2f} s"
    )
    for backend in ("thread", "process"):
        for workers, m in throughput[backend].items():
            print(
                f"    {backend}@{workers}: {m['elapsed_s']:.2f} s "
                f"({m['speedup_vs_serial']:.2f}x, "
                f"{m['requests_per_s']:.2f} req/s)"
            )
    for backend in ("thread", "process"):
        for workers, m in throughput["persistent"][backend].items():
            print(
                f"    persistent {backend}@{workers}: "
                f"{m['amortized_elapsed_s']:.2f} s/batch amortized "
                f"(first {m['first_batch_s']:.2f} s, warm "
                f"{m['warm_batch_s']:.2f} s, "
                f"{m['speedup_vs_spawn_per_call']:.2f}x vs spawn-per-call)"
            )
    print("  serving:")
    serve_load._print_summary(serving)
    print(
        f"  kernels (numba_available={kernel_backends['numba_available']}):"
    )
    for name, m in sorted(kernel_backends["kernels"].items()):
        native = (
            f"{m['numba_s'] * 1e3:8.3f} ms ({m['speedup']:.2f}x)"
            if m["numba_s"]
            else "    (no numba)"
        )
        print(f"    {name:>18s}: numpy {m['numpy_s'] * 1e3:8.3f} ms  numba {native}")
    print("  degraded routing:")
    for frac, m in degraded["fractions"].items():
        print(
            f"    {float(frac) * 100:4.1f}% dead links: build "
            f"{m['build_s'] * 1e3:7.1f} ms, inflation "
            f"{m['length_inflation']:.4f}, affected "
            f"{m['affected_pair_fraction'] * 100:.2f}% of pairs"
        )
    print(f"  ipc (shm_available={ipc['shm_available']}):")
    for tier, entry in ipc["tiers"].items():
        print(
            f"    {tier:>4s}: load geo-mean "
            f"{entry['load_geo_mean_s'] * 1e3:7.3f} ms"
        )
        for name, m in sorted(entry["artifacts"].items()):
            print(
                f"      {name:>14s}: save {m['save_s'] * 1e3:7.3f} ms  "
                f"load {m['load_s'] * 1e3:7.3f} ms"
            )
    warm = ipc.get("warm_process_batch")
    if warm:
        print(
            f"    warm pooled batch ({warm['store_tier']}): cold "
            f"{warm['cold_s']:.2f} s, warm {warm['warm_s']:.2f} s, "
            f"parent disk loads {warm['parent_disk_loads']}, "
            f"batch files on disk {warm['batch_disk_files']}"
        )
    sharded = dist["sharded"]
    print(
        f"  dist: {dist['requests']} requests over {dist['hosts']} loopback "
        f"hosts: {sharded['elapsed_s']:.2f} s "
        f"({sharded['speedup_vs_serial']:.2f}x vs serial), "
        f"byte_identical={sharded['byte_identical']}, "
        f"errors={sharded['errors']}, "
        f"steals={sharded['router']['steals']}"
    )
    return out_path


if __name__ == "__main__":
    main(sys.argv)
