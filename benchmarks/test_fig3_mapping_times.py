"""Benchmark regenerating Figure 3 (geometric-mean mapping times).

Shape: UG is the cheapest; the refinement variants cost more than UG
alone (they include it); TMAP — which re-partitions the task graph —
is the most expensive algorithm, as in the paper.
"""

from repro.analysis.stats import geometric_mean
from repro.experiments.fig2 import format_fig3, run_fig2


def test_fig3_mapping_times(benchmark, profile, cache):
    result = benchmark.pedantic(
        lambda: run_fig2(profile, cache), rounds=1, iterations=1
    )
    print()
    print(format_fig3(result))

    procs = result.proc_counts

    def overall(algo):
        return geometric_mean([result.times[(p, algo)] for p in procs])

    assert overall("UG") <= overall("UWH")
    assert overall("UG") <= overall("UMC")
    assert overall("UG") <= overall("UMMC")
    # TMAP costs more than the whole fast family (SMAP/UG/UWH): it runs
    # its own partitioning phase.  (Our UMC/UMMC sweep deeper than the
    # paper's variants and may exceed TMAP — see EXPERIMENTS.md.)
    fast = ["SMAP", "UG", "UWH"]
    assert overall("TMAP") >= max(overall(a) for a in fast)
    # Times grow with the processor count for the heavyweight mappers.
    assert result.times[(procs[-1], "TMAP")] > result.times[(procs[0], "TMAP")]
