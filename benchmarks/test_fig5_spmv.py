"""Benchmark regenerating Figure 5 (Tpetra-like SpMV, cage).

Shape checks (paper Sec. IV-D): UWH achieves the best overall time and
beats DEF on most partitioner graphs; TH correlates with execution time.
"""

import numpy as np

from repro.experiments.fig4 import FIG4_MAPPERS, FIG4_PARTITIONERS
from repro.experiments.fig5 import format_fig5, run_fig5


def test_fig5_spmv_cage(benchmark, profile, cache):
    result = benchmark.pedantic(
        lambda: run_fig5("cage15_like", profile, cache), rounds=1, iterations=1
    )
    print()
    print(format_fig5(result))

    # UWH improves on DEF for a majority of the partitioner graphs.
    wins = sum(
        result.values[(pt, "UWH", "time")] <= result.values[(pt, "DEF", "time")] * 1.02
        for pt in FIG4_PARTITIONERS
    )
    assert wins >= len(FIG4_PARTITIONERS) // 2

    # TH correlates with the execution time across the whole grid.
    ths = [result.values[(pt, al, "TH")] for pt in FIG4_PARTITIONERS for al in FIG4_MAPPERS]
    ts = [result.values[(pt, al, "time")] for pt in FIG4_PARTITIONERS for al in FIG4_MAPPERS]
    corr = np.corrcoef(ths, ts)[0, 1]
    assert corr > 0.2, f"time should correlate with TH, got r={corr:.2f}"
