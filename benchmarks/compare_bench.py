"""Compare two perf snapshots; fail on a large geo-mean regression.

The scheduled CI job emits a fresh snapshot with
``benchmarks/emit_bench.py`` and runs this script against the latest
*committed* ``BENCH_<n>.json``; the job fails when the geometric mean of
the per-algorithm map-time ratios (new / baseline) exceeds the threshold
(default ``1.25`` — a >25% regression).  Only algorithms present in both
snapshots are compared, so adding a mapper never breaks the gate.

Snapshots from different hardware drift for non-code reasons; the gate
is deliberately coarse (geo-mean across all algorithms, generous
threshold) to catch real hot-path regressions, not scheduler noise.

Usage::

    PYTHONPATH=src python benchmarks/compare_bench.py NEW.json [BASELINE.json]
        [--threshold 1.25]

With no explicit baseline, the highest-numbered ``BENCH_<n>.json`` in
the repository root that is not the new snapshot itself is used.
Exit codes: 0 ok, 1 regression past the threshold, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

__all__ = ["compare_snapshots", "latest_snapshot", "main"]


def latest_snapshot(exclude: Optional[str] = None) -> Optional[str]:
    """Path of the highest-numbered committed ``BENCH_<n>.json``."""
    exclude_abs = os.path.abspath(exclude) if exclude else None
    best: Tuple[int, Optional[str]] = (-1, None)
    for name in os.listdir(REPO_ROOT):
        m = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if not m:
            continue
        path = os.path.join(REPO_ROOT, name)
        if exclude_abs and os.path.abspath(path) == exclude_abs:
            continue
        index = int(m.group(1))
        if index > best[0]:
            best = (index, path)
    return best[1]


def compare_snapshots(
    baseline: dict, new: dict, threshold: float = 1.25
) -> Tuple[bool, float, List[str]]:
    """``(ok, geo_mean_ratio, report_lines)`` of two snapshot payloads."""
    base_times: Dict[str, float] = baseline.get("geo_mean_map_time_s", {})
    new_times: Dict[str, float] = new.get("geo_mean_map_time_s", {})
    shared = [a for a in base_times if a in new_times and base_times[a] > 0]
    if not shared:
        raise ValueError("snapshots share no timed algorithms")

    lines = [f"{'algorithm':>10s} {'base(ms)':>10s} {'new(ms)':>10s} {'ratio':>7s}"]
    log_sum = 0.0
    import math

    for algo in shared:
        ratio = new_times[algo] / base_times[algo]
        log_sum += math.log(ratio)
        lines.append(
            f"{algo:>10s} {base_times[algo] * 1e3:10.2f} "
            f"{new_times[algo] * 1e3:10.2f} {ratio:7.3f}"
        )
    geo_ratio = math.exp(log_sum / len(shared))
    ok = geo_ratio <= threshold
    lines.append(
        f"geo-mean ratio {geo_ratio:.3f} "
        f"({'OK' if ok else 'REGRESSION'}, threshold {threshold:.2f})"
    )
    return ok, geo_ratio, lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on a geo-mean map-time regression between snapshots."
    )
    parser.add_argument("new", help="freshly emitted snapshot JSON")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="committed snapshot (default: latest BENCH_<n>.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="maximum allowed geo-mean ratio new/baseline (default 1.25)",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline or latest_snapshot(exclude=args.new)
    if baseline_path is None:
        print("error: no committed BENCH_<n>.json to compare against", file=sys.stderr)
        return 2
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        with open(args.new) as fh:
            new = json.load(fh)
        ok, _, lines = compare_snapshots(baseline, new, args.threshold)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"baseline: {baseline_path}")
    print(f"new:      {args.new}")
    print("\n".join(lines))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
