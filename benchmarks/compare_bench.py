"""Compare two perf snapshots; fail on a large geo-mean regression.

The scheduled CI job emits a fresh snapshot with
``benchmarks/emit_bench.py`` and runs this script against the latest
*committed* ``BENCH_<n>.json``; the job fails when the geometric mean of
the per-algorithm map-time ratios (new / baseline) exceeds the threshold
(default ``1.25`` — a >25% regression).  Only algorithms present in both
snapshots are compared, so adding a mapper never breaks the gate.

Snapshots from different hardware drift for non-code reasons; the gate
is deliberately coarse (geo-mean across all algorithms, generous
threshold) to catch real hot-path regressions, not scheduler noise.

With ``--gate-batch`` the ``batch_throughput`` section is gated too
(the scheduled CI perf job passes it, closing the ROADMAP's "once
multi-core snapshots exist" item):

* **Self-consistency** — every persistent-pool measurement's amortized
  per-batch time must beat the spawn-per-call backend of the same
  shape (the serving layer's raison d'être; hardware-independent, so
  it gates on every host).
* **Cross-snapshot** — when *both* snapshots were emitted on
  multi-core hosts (``cpus >= 2``), the geometric mean of the
  requests/sec ratios (baseline / new) over the backends both carry
  must not exceed the threshold.  Single-core baselines (like the
  build container's) skip this check with a note instead of gating on
  numbers that cannot show scaling.

With ``--gate-tail`` the ``serving`` section (the network front end's
tail-latency measurement from ``benchmarks/serve_load.py``) is gated on
its *structural* invariants, which hold on any hardware:

* **Nominal shed-free** — the nominal phase keeps fewer closed-loop
  clients in flight than the server's admission bound, so any shed
  there is an admission-control bug, not load.
* **Overload sheds** — the overload phase runs more clients than
  ``max_pending``; a server that never says ``overloaded`` there has
  stopped shedding.
* **Shedding is cheap** — the p95 of shed replies must be below the
  p50 of answered requests: the point of admission control is that
  "no" costs microseconds, not a mapping run.
* **Coalescing works** — the synchronized identical burst must fold
  into fewer dispatches than requests with exactly one grouping-stage
  cache miss (the planner deduped the rest).
* **Cross-snapshot p99** — when both snapshots carry a serving section
  and come from multi-core hosts, the geo-mean of the nominal/overload
  p99 ratios (new / baseline) must not exceed the threshold.

With ``--gate-native`` the ``kernel_backends`` section is gated: over
every hot kernel whose snapshot recorded *both* a NumPy and a numba
timing, the geometric mean of the native/NumPy ratios must not exceed
1.0 — warmed JIT kernels are allowed to tie but never to lose to the
reference they replace.  Snapshots emitted without numba installed
(native timings null) skip the check with a note instead of failing, so
the gate is safe to pass unconditionally.

With ``--gate-ipc`` the ``ipc`` section (the zero-copy artifact plane's
transfer latencies) is gated, self-consistently within the new
snapshot: wherever both store tiers timed an artifact load, shared
memory must beat disk on the load geo-mean, and the recorded warm
pooled batch must have performed zero artifact disk reads.  Snapshots
emitted on hosts without working shared memory skip with a note, so
the gate is safe to pass unconditionally.

With ``--gate-dist`` the ``dist`` section (multi-host sharding over
loopback hosts) is gated, self-consistently within the new snapshot:
the sharded run's mappings must be byte-identical to the serial
reference, the batch must finish with zero errors and zero hosts lost,
and on multi-core snapshots the dispatch overhead must keep sharded
wall time within 3x of serial.  Snapshots predating the section skip
with a note, so the gate is safe to pass unconditionally.

Usage::

    PYTHONPATH=src python benchmarks/compare_bench.py NEW.json [BASELINE.json]
        [--threshold 1.25] [--gate-batch] [--gate-tail] [--gate-native]
        [--gate-ipc] [--gate-dist]

With no explicit baseline, the highest-numbered ``BENCH_<n>.json`` in
the repository root that is not the new snapshot itself is used.
Exit codes: 0 ok, 1 regression past the threshold, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

__all__ = [
    "compare_snapshots",
    "gate_batch_throughput",
    "gate_dist",
    "gate_ipc",
    "gate_native_kernels",
    "gate_tail_latency",
    "latest_snapshot",
    "main",
]


def latest_snapshot(exclude: Optional[str] = None) -> Optional[str]:
    """Path of the highest-numbered committed ``BENCH_<n>.json``."""
    exclude_abs = os.path.abspath(exclude) if exclude else None
    best: Tuple[int, Optional[str]] = (-1, None)
    for name in os.listdir(REPO_ROOT):
        m = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if not m:
            continue
        path = os.path.join(REPO_ROOT, name)
        if exclude_abs and os.path.abspath(path) == exclude_abs:
            continue
        index = int(m.group(1))
        if index > best[0]:
            best = (index, path)
    return best[1]


def compare_snapshots(
    baseline: dict, new: dict, threshold: float = 1.25
) -> Tuple[bool, float, List[str]]:
    """``(ok, geo_mean_ratio, report_lines)`` of two snapshot payloads."""
    base_times: Dict[str, float] = baseline.get("geo_mean_map_time_s", {})
    new_times: Dict[str, float] = new.get("geo_mean_map_time_s", {})
    shared = [a for a in base_times if a in new_times and base_times[a] > 0]
    if not shared:
        raise ValueError("snapshots share no timed algorithms")

    lines = [f"{'algorithm':>10s} {'base(ms)':>10s} {'new(ms)':>10s} {'ratio':>7s}"]
    log_sum = 0.0
    import math

    for algo in shared:
        ratio = new_times[algo] / base_times[algo]
        log_sum += math.log(ratio)
        lines.append(
            f"{algo:>10s} {base_times[algo] * 1e3:10.2f} "
            f"{new_times[algo] * 1e3:10.2f} {ratio:7.3f}"
        )
    geo_ratio = math.exp(log_sum / len(shared))
    ok = geo_ratio <= threshold
    lines.append(
        f"geo-mean ratio {geo_ratio:.3f} "
        f"({'OK' if ok else 'REGRESSION'}, threshold {threshold:.2f})"
    )
    return ok, geo_ratio, lines


def _throughput_rps(section: dict) -> Dict[str, float]:
    """Flatten a ``batch_throughput`` section to ``label -> requests/sec``.

    Labels are ``serial``, ``thread@2``, ``process@4``,
    ``persistent-thread@2``, … — whatever the snapshot carries.
    """
    out: Dict[str, float] = {}
    serial = section.get("serial", {})
    if serial.get("requests_per_s"):
        out["serial"] = float(serial["requests_per_s"])
    for backend in ("thread", "process"):
        for workers, m in section.get(backend, {}).items():
            if m.get("requests_per_s"):
                out[f"{backend}@{workers}"] = float(m["requests_per_s"])
    for backend, widths in section.get("persistent", {}).items():
        for workers, m in widths.items():
            if m.get("requests_per_s"):
                out[f"persistent-{backend}@{workers}"] = float(m["requests_per_s"])
    return out


def gate_batch_throughput(
    baseline: dict, new: dict, threshold: float = 1.25
) -> Tuple[bool, List[str]]:
    """``(ok, report_lines)`` for the batch-throughput gates.

    See the module docstring: a hardware-independent self-consistency
    gate (persistent pools must beat spawn-per-call of the same shape)
    plus a cross-snapshot requests/sec gate that only arms when both
    snapshots come from multi-core hosts.
    """
    import math

    lines: List[str] = []
    ok = True
    section = new.get("batch_throughput")
    if not section:
        return False, ["batch gate: new snapshot has no batch_throughput section"]

    persistent = section.get("persistent", {})
    if not persistent:
        ok = False
        lines.append("batch gate: new snapshot has no persistent-pool block")
    compared = 0
    for backend, widths in persistent.items():
        for workers, m in widths.items():
            spawn = section.get(backend, {}).get(workers, {}).get("elapsed_s")
            amortized = m.get("amortized_elapsed_s")
            if spawn is None or amortized is None:
                ok = False
                lines.append(
                    f"batch gate: persistent-{backend}@{workers} has no "
                    "matching spawn-per-call measurement (MALFORMED)"
                )
                continue
            compared += 1
            good = amortized < spawn
            ok = ok and good
            lines.append(
                f"batch gate: persistent-{backend}@{workers} amortized "
                f"{amortized:.2f} s vs spawn-per-call {spawn:.2f} s "
                f"({'OK' if good else 'REGRESSION'})"
            )
    if persistent and not compared:
        # A green gate must mean the check actually ran.
        ok = False
        lines.append("batch gate: zero persistent/spawn pairs compared (MALFORMED)")

    base_section = baseline.get("batch_throughput")
    base_cpus = int(baseline.get("cpus", 1) or 1)
    new_cpus = int(new.get("cpus", 1) or 1)
    if not base_section:
        lines.append("batch gate: baseline has no batch_throughput; cross-check skipped")
    elif base_cpus < 2 or new_cpus < 2:
        lines.append(
            f"batch gate: cross-check skipped (baseline cpus={base_cpus}, "
            f"new cpus={new_cpus}; needs multi-core on both sides)"
        )
    else:
        base_rps = _throughput_rps(base_section)
        new_rps = _throughput_rps(section)
        shared = sorted(k for k in base_rps if k in new_rps)
        if not shared:
            lines.append("batch gate: snapshots share no throughput entries")
        else:
            log_sum = 0.0
            for label in shared:
                ratio = base_rps[label] / new_rps[label]
                log_sum += math.log(ratio)
                lines.append(
                    f"batch gate: {label:>22s} {base_rps[label]:8.2f} -> "
                    f"{new_rps[label]:8.2f} req/s (ratio {ratio:.3f})"
                )
            geo = math.exp(log_sum / len(shared))
            good = geo <= threshold
            ok = ok and good
            lines.append(
                f"batch gate: geo-mean throughput ratio {geo:.3f} "
                f"({'OK' if good else 'REGRESSION'}, threshold {threshold:.2f})"
            )
    return ok, lines


def gate_tail_latency(
    baseline: dict, new: dict, threshold: float = 1.25
) -> Tuple[bool, List[str]]:
    """``(ok, report_lines)`` for the serving tail-latency gates.

    See the module docstring: four hardware-independent structural
    invariants of the ``serving`` section, plus a cross-snapshot p99
    ratio that arms only when both snapshots carry the section and
    were emitted on multi-core hosts.
    """
    import math

    lines: List[str] = []
    ok = True
    section = new.get("serving")
    if not section:
        return False, ["tail gate: new snapshot has no serving section"]

    nominal = section.get("nominal") or {}
    overload = section.get("overload") or {}
    coalesce = section.get("coalesce") or {}

    shed = nominal.get("shed")
    good = shed == 0 and nominal.get("completed", 0) > 0
    ok = ok and good
    lines.append(
        f"tail gate: nominal shed={shed} "
        f"completed={nominal.get('completed')} "
        f"({'OK' if good else 'REGRESSION'}; must answer everything)"
    )

    good = overload.get("shed", 0) > 0
    ok = ok and good
    lines.append(
        f"tail gate: overload shed={overload.get('shed')} "
        f"({'OK' if good else 'REGRESSION'}; admission control must shed)"
    )

    shed_lat = overload.get("shed_latency") or {}
    ans_lat = overload.get("latency") or {}
    if shed_lat.get("count") and ans_lat.get("count"):
        good = shed_lat["p95_ms"] < ans_lat["p50_ms"]
        ok = ok and good
        lines.append(
            f"tail gate: shed reply p95 {shed_lat['p95_ms']:.2f} ms vs "
            f"answered p50 {ans_lat['p50_ms']:.2f} ms "
            f"({'OK' if good else 'REGRESSION'}; shedding must be cheap)"
        )
    else:
        lines.append(
            "tail gate: shed-cost check skipped (overload phase answered "
            "or shed nothing)"
        )

    requests = coalesce.get("requests", 0)
    dispatches = coalesce.get("dispatches")
    misses = coalesce.get("grouping_misses")
    good = (
        requests > 1
        and dispatches is not None
        and dispatches < requests
        and misses == 1
    )
    ok = ok and good
    lines.append(
        f"tail gate: coalesce {requests} identical requests -> "
        f"{dispatches} dispatch(es), grouping misses {misses} "
        f"({'OK' if good else 'REGRESSION'}; burst must fold and dedupe)"
    )

    base_section = baseline.get("serving")
    base_cpus = int(baseline.get("cpus", 1) or 1)
    new_cpus = int(new.get("cpus", 1) or 1)
    if not base_section:
        lines.append("tail gate: baseline has no serving section; p99 check skipped")
    elif base_cpus < 2 or new_cpus < 2:
        lines.append(
            f"tail gate: p99 check skipped (baseline cpus={base_cpus}, "
            f"new cpus={new_cpus}; needs multi-core on both sides)"
        )
    else:
        log_sum = 0.0
        compared = 0
        for name in ("nominal", "overload"):
            base_p99 = ((base_section.get(name) or {}).get("latency") or {}).get(
                "p99_ms"
            )
            new_p99 = ((section.get(name) or {}).get("latency") or {}).get("p99_ms")
            if not base_p99 or not new_p99:
                continue
            ratio = new_p99 / base_p99
            log_sum += math.log(ratio)
            compared += 1
            lines.append(
                f"tail gate: {name} p99 {base_p99:8.2f} -> {new_p99:8.2f} ms "
                f"(ratio {ratio:.3f})"
            )
        if not compared:
            lines.append("tail gate: snapshots share no p99 phases")
        else:
            geo = math.exp(log_sum / compared)
            good = geo <= threshold
            ok = ok and good
            lines.append(
                f"tail gate: geo-mean p99 ratio {geo:.3f} "
                f"({'OK' if good else 'REGRESSION'}, threshold {threshold:.2f})"
            )
    return ok, lines


def gate_native_kernels(new: dict) -> Tuple[bool, List[str]]:
    """``(ok, report_lines)`` for the native-kernel speed gate.

    Self-consistency within the *new* snapshot only (no baseline
    needed): whenever a kernel carries both tiers' timings, warmed
    numba must not be slower than NumPy on geo-mean.  A snapshot whose
    native timings are all null (numba not installed where it was
    emitted) skips with a note — the gate only arms where it can
    actually measure.
    """
    import math

    section = new.get("kernel_backends")
    if not section:
        return False, ["native gate: new snapshot has no kernel_backends section"]
    kernels = section.get("kernels") or {}
    pairs = {
        name: (m["numpy_s"], m["numba_s"])
        for name, m in kernels.items()
        if m.get("numpy_s") and m.get("numba_s")
    }
    if not pairs:
        return True, [
            "native gate: no kernel recorded both tiers "
            f"(numba_available={section.get('numba_available')}); skipped"
        ]
    lines: List[str] = []
    log_sum = 0.0
    for name in sorted(pairs):
        numpy_s, numba_s = pairs[name]
        ratio = numba_s / numpy_s
        log_sum += math.log(ratio)
        lines.append(
            f"native gate: {name:>22s} numpy {numpy_s * 1e3:8.3f} ms  "
            f"numba {numba_s * 1e3:8.3f} ms  (ratio {ratio:.3f})"
        )
    geo = math.exp(log_sum / len(pairs))
    ok = geo <= 1.0
    lines.append(
        f"native gate: geo-mean numba/numpy ratio {geo:.3f} over "
        f"{len(pairs)} kernels ({'OK' if ok else 'REGRESSION'}; "
        "native must not lose to the reference)"
    )
    return ok, lines


def gate_ipc(new: dict) -> Tuple[bool, List[str]]:
    """``(ok, report_lines)`` for the artifact-transfer (IPC) gate.

    Self-consistency within the *new* snapshot only: wherever both
    store tiers timed an artifact load, the shared-memory tier must
    beat disk on geo-mean — the tier exists to be faster, so losing to
    the files it fronts is a regression.  The ``warm_process_batch``
    block must additionally show zero artifact disk reads (that is the
    zero-copy data plane's headline claim).  Snapshots emitted where
    shared memory is unavailable skip with a note, so the gate is safe
    to pass unconditionally.
    """
    import math

    section = new.get("ipc")
    if not section:
        return False, ["ipc gate: new snapshot has no ipc section"]
    if not section.get("shm_available"):
        return True, [
            "ipc gate: shared memory unavailable where this snapshot "
            "was emitted; skipped"
        ]
    tiers = section.get("tiers") or {}
    disk = (tiers.get("disk") or {}).get("artifacts") or {}
    shm = (tiers.get("shm") or {}).get("artifacts") or {}
    pairs = {
        name: (disk[name]["load_s"], shm[name]["load_s"])
        for name in disk
        if name in shm
        and disk[name].get("load_s")
        and shm[name].get("load_s")
    }
    if not pairs:
        return False, [
            "ipc gate: shm reported available but no artifact was timed "
            "on both tiers (MALFORMED)"
        ]
    lines: List[str] = []
    log_sum = 0.0
    for name in sorted(pairs):
        disk_s, shm_s = pairs[name]
        ratio = shm_s / disk_s
        log_sum += math.log(ratio)
        lines.append(
            f"ipc gate: {name:>16s} disk {disk_s * 1e3:8.3f} ms  "
            f"shm {shm_s * 1e3:8.3f} ms  (ratio {ratio:.3f})"
        )
    geo = math.exp(log_sum / len(pairs))
    ok = geo <= 1.0
    lines.append(
        f"ipc gate: geo-mean shm/disk load ratio {geo:.3f} over "
        f"{len(pairs)} artifacts ({'OK' if ok else 'REGRESSION'}; "
        "shared memory must beat the disk it fronts)"
    )

    warm = section.get("warm_process_batch")
    if warm is None:
        ok = False
        lines.append(
            "ipc gate: shm available but no warm_process_batch block "
            "(MALFORMED)"
        )
    else:
        disk_loads = warm.get("parent_disk_loads")
        batch_files = warm.get("batch_disk_files")
        good = disk_loads == 0 and batch_files == 0
        ok = ok and good
        lines.append(
            f"ipc gate: warm pooled batch disk loads={disk_loads}, "
            f"batch files on disk={batch_files} "
            f"({'OK' if good else 'REGRESSION'}; warm batches must not "
            "touch disk)"
        )
    return ok, lines


def gate_dist(new: dict) -> Tuple[bool, List[str]]:
    """``(ok, report_lines)`` for the multi-host sharding gate.

    Self-consistency within the *new* snapshot only: the sharded run
    must be **byte-identical** to the serial reference (that is the
    sharding plane's headline claim), finish with zero request errors
    and zero hosts lost, and — on multi-core snapshots, where loopback
    hosts have CPUs to themselves — keep dispatch overhead bounded
    (sharded wall time no worse than 3x serial; loopback sharding
    cannot be expected to *win* on one machine, but an order-of-
    magnitude dispatch tax is a regression).  Snapshots predating the
    section skip with a note, so the gate is safe to pass
    unconditionally.
    """
    section = new.get("dist")
    if not section:
        return True, ["dist gate: new snapshot has no dist section; skipped"]
    sharded = section.get("sharded") or {}
    lines: List[str] = []
    ok = True

    identical = sharded.get("byte_identical")
    good = identical is True
    ok = ok and good
    lines.append(
        f"dist gate: byte_identical={identical} "
        f"({'OK' if good else 'REGRESSION'}; sharded mappings must match "
        "the serial reference exactly)"
    )

    errors = sharded.get("errors")
    hosts_lost = sharded.get("hosts_lost") or []
    good = errors == 0 and not hosts_lost
    ok = ok and good
    lines.append(
        f"dist gate: errors={errors}, hosts_lost={list(hosts_lost)} "
        f"({'OK' if good else 'REGRESSION'}; a healthy loopback cluster "
        "must finish clean)"
    )

    speedup = sharded.get("speedup_vs_serial")
    if new.get("cpus", 1) < 2:
        lines.append(
            f"dist gate: speedup_vs_serial={speedup:.2f} not gated "
            "(single-CPU snapshot; loopback hosts share one core)"
        )
    elif speedup is not None:
        good = speedup >= 1.0 / 3.0
        ok = ok and good
        lines.append(
            f"dist gate: speedup_vs_serial={speedup:.2f} "
            f"({'OK' if good else 'REGRESSION'}; dispatch overhead must "
            "keep sharded wall time within 3x of serial on loopback)"
        )
    return ok, lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on a geo-mean map-time regression between snapshots."
    )
    parser.add_argument("new", help="freshly emitted snapshot JSON")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="committed snapshot (default: latest BENCH_<n>.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="maximum allowed geo-mean ratio new/baseline (default 1.25)",
    )
    parser.add_argument(
        "--gate-batch",
        action="store_true",
        help="also gate the batch_throughput section (persistent pools "
        "must beat spawn-per-call; multi-core snapshots gate requests/sec)",
    )
    parser.add_argument(
        "--gate-tail",
        action="store_true",
        help="also gate the serving section (nominal load must not shed, "
        "overload must shed cheaply, identical bursts must coalesce; "
        "multi-core snapshots gate the p99 ratio)",
    )
    parser.add_argument(
        "--gate-native",
        action="store_true",
        help="also gate the kernel_backends section (warmed numba kernels "
        "must not be slower than NumPy on geo-mean wherever both tiers "
        "were timed; numba-less snapshots skip with a note)",
    )
    parser.add_argument(
        "--gate-ipc",
        action="store_true",
        help="also gate the ipc section (shared-memory artifact loads "
        "must beat disk on geo-mean and warm pooled batches must do "
        "zero disk reads; shm-less snapshots skip with a note)",
    )
    parser.add_argument(
        "--gate-dist",
        action="store_true",
        help="also gate the dist section (sharded mappings must be "
        "byte-identical to serial with zero errors, and dispatch "
        "overhead bounded on multi-core snapshots; snapshots predating "
        "the section skip with a note)",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline or latest_snapshot(exclude=args.new)
    if baseline_path is None:
        print("error: no committed BENCH_<n>.json to compare against", file=sys.stderr)
        return 2
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        with open(args.new) as fh:
            new = json.load(fh)
        ok, _, lines = compare_snapshots(baseline, new, args.threshold)
        if args.gate_batch:
            batch_ok, batch_lines = gate_batch_throughput(
                baseline, new, args.threshold
            )
            ok = ok and batch_ok
            lines += batch_lines
        if args.gate_tail:
            tail_ok, tail_lines = gate_tail_latency(baseline, new, args.threshold)
            ok = ok and tail_ok
            lines += tail_lines
        if args.gate_native:
            native_ok, native_lines = gate_native_kernels(new)
            ok = ok and native_ok
            lines += native_lines
        if args.gate_ipc:
            ipc_ok, ipc_lines = gate_ipc(new)
            ok = ok and ipc_ok
            lines += ipc_lines
        if args.gate_dist:
            dist_ok, dist_lines = gate_dist(new)
            ok = ok and dist_ok
            lines += dist_lines
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"baseline: {baseline_path}")
    print(f"new:      {args.new}")
    print("\n".join(lines))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
