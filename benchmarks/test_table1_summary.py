"""Benchmark regenerating Table I (summary improvements).

Shape checks: UWH's geometric-mean normalized time beats DEF on all
three applications; UG sits between DEF and UWH; TMAP stays near 1.0.
"""

from repro.experiments.table1 import TABLE1_MAPPERS, format_table1, run_table1


def test_table1_summary(benchmark, profile, cache):
    result = benchmark.pedantic(
        lambda: run_table1(profile, cache), rounds=1, iterations=1
    )
    print()
    print(format_table1(result))

    for app in ("cage_spmv", "cage_comm", "rgg_comm"):
        gm = result.gmean(app)
        assert gm["UWH"] < 1.02, f"UWH should improve {app}, got {gm['UWH']:.3f}"
        # TMAP's fallback keeps it near DEF.
        assert 0.85 < gm["TMAP"] < 1.2

    comm = result.gmean("cage_comm")
    spmv = result.gmean("cage_spmv")
    # UG also improves the comm-bound app on average.
    assert comm["UG"] < 1.05
    # Every mapper stays within sane bounds.
    for app in ("cage_spmv", "cage_comm", "rgg_comm"):
        for m in TABLE1_MAPPERS:
            assert 0.3 < result.gmean(app)[m] < 2.0
