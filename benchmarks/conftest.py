"""Benchmark fixtures: one shared workload cache per session.

Profile selection: ``REPRO_PROFILE`` environment variable (default
``ci``).  Use ``REPRO_PROFILE=smoke`` for a fast sanity sweep or
``REPRO_PROFILE=paper`` for the publication's scales (hours).
"""

import pytest

from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import profile_from_env
from repro.kernels.backend import numba_available, use_backend, warm_up


@pytest.fixture(
    params=[
        pytest.param("numpy"),
        pytest.param(
            "numba",
            marks=pytest.mark.skipif(
                not numba_available(),
                reason="numba is not installed (pip install -e .[native])",
            ),
        ),
    ]
)
def kernel_backend(request):
    """Benchmark axis over the kernel backends, pre-warmed: the numba
    leg measures steady-state compiled code, never JIT compilation."""
    with use_backend(request.param) as backend:
        warm_up(backend)
        yield request.param


@pytest.fixture(scope="session")
def profile():
    return profile_from_env(default="ci")


@pytest.fixture(scope="session")
def cache(profile):
    return WorkloadCache(profile)
