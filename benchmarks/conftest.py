"""Benchmark fixtures: one shared workload cache per session.

Profile selection: ``REPRO_PROFILE`` environment variable (default
``ci``).  Use ``REPRO_PROFILE=smoke`` for a fast sanity sweep or
``REPRO_PROFILE=paper`` for the publication's scales (hours).
"""

import pytest

from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import profile_from_env


@pytest.fixture(scope="session")
def profile():
    return profile_from_env(default="ci")


@pytest.fixture(scope="session")
def cache(profile):
    return WorkloadCache(profile)
