"""Ablation benches for the design choices DESIGN.md calls out.

* Δ (swap-candidate early exit): the paper fixes Δ=8; the sweep shows
  diminishing WH returns past that point while time keeps growing.
* NBFS best-of-two seeding: running both NBFS ∈ {0, 1} and keeping the
  lower-WH mapping is never worse than either alone.
* Refinement granularity: the paper refines at the coarse (node) level;
  the bench quantifies what the fine-level alternative would cost.
"""

import time

import pytest

from repro.mapping.base import wh_of
from repro.mapping.greedy import GreedyMapper, greedy_map
from repro.mapping.pipeline import prepare_groups
from repro.mapping.refine_wh import WHRefiner


@pytest.fixture(scope="module")
def workload(request):
    # Reuse the session cache through the conftest fixtures.
    profile = request.getfixturevalue("profile")
    cache = request.getfixturevalue("cache")
    procs = profile.proc_counts[min(1, len(profile.proc_counts) - 1)]
    wl = cache.workload("cage15_like", "PATOH", procs)
    machine = cache.machine(procs, profile.alloc_seeds[0])
    groups = cache.groups("cage15_like", "PATOH", procs, profile.alloc_seeds[0])
    return wl, machine, groups


def test_ablation_delta_sweep(benchmark, workload):
    """WH vs Δ: larger budgets help with diminishing returns."""
    wl, machine, (group_of_task, coarse) = workload
    ug = GreedyMapper().map(coarse, machine)

    def sweep():
        out = {}
        for delta in (1, 4, 8, 16, 32):
            t0 = time.perf_counter()
            refined = WHRefiner(delta=delta).refine(coarse, ug)
            dt = time.perf_counter() - t0
            out[delta] = (wh_of(coarse, machine, refined.gamma), dt)
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("delta   WH        seconds")
    for delta, (wh, dt) in result.items():
        print(f"{delta:5d} {wh:10.0f} {dt:9.4f}")
    whs = [result[d][0] for d in (1, 4, 8, 16, 32)]
    # More budget never hurts quality.
    assert whs[2] <= whs[0] + 1e-9  # Δ=8 at least as good as Δ=1
    # Δ=8 captures most of the achievable gain (paper's choice).
    gain_8 = whs[0] - whs[2]
    gain_32 = whs[0] - whs[4]
    if gain_32 > 0:
        assert gain_8 >= 0.5 * gain_32


def test_ablation_nbfs_best_of_two(benchmark, workload):
    """Best-of-{0,1} seeding dominates both single choices."""
    wl, machine, (_, coarse) = workload

    def run():
        wh0 = wh_of(coarse, machine, greedy_map(coarse, machine, nbfs=0))
        wh1 = wh_of(coarse, machine, greedy_map(coarse, machine, nbfs=1))
        best = wh_of(coarse, machine, GreedyMapper().map(coarse, machine).gamma)
        return wh0, wh1, best

    wh0, wh1, best = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nNBFS=0: {wh0:.0f}  NBFS=1: {wh1:.0f}  best-of-two: {best:.0f}")
    assert best <= min(wh0, wh1) + 1e-9


def test_ablation_coarse_vs_fine_refinement(benchmark, workload):
    """Sec. III-B trade: fine-level refinement buys WH but costs time.

    The paper refines on the coarse graph only, warning that fine-level
    swaps can raise the inter-node volume; this ablation measures both
    sides of that trade with the UWHF extension.
    """
    from repro.mapping.pipeline import get_mapper
    from repro.mapping.refine_fine import fine_wh_of, internode_volume

    wl, machine, groups = workload

    def run():
        out = {}
        for name in ("UWH", "UWHF"):
            t0 = time.perf_counter()
            res = get_mapper(name, seed=1).map(wl.task_graph, machine, groups=groups)
            dt = time.perf_counter() - t0
            out[name] = (
                fine_wh_of(wl.task_graph, machine, res.fine_gamma),
                internode_volume(wl.task_graph, res.fine_gamma),
                dt,
            )
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("refine    WH        ICV      seconds")
    for name, (wh, icv, dt) in result.items():
        print(f"{name:>6s} {wh:9.0f} {icv:9.0f} {dt:9.3f}")
    # Fine refinement never worsens WH (it starts from UWH's mapping).
    assert result["UWHF"][0] <= result["UWH"][0] + 1e-9


def test_ablation_group_partitioner_strength(benchmark, workload, profile):
    """Stronger phase-1 grouping lowers coarse volume but costs time."""
    from repro.partition.driver import EngineConfig

    wl, machine, _ = workload

    def run():
        out = {}
        for label, cfg in (
            ("weak", EngineConfig(fm_passes=1, initial_attempts=1)),
            ("default", EngineConfig(fm_passes=3, initial_attempts=4)),
            ("strong", EngineConfig(fm_passes=6, initial_attempts=8)),
        ):
            t0 = time.perf_counter()
            _, coarse = prepare_groups(
                wl.task_graph, machine, seed=1, config=cfg
            )
            out[label] = (coarse.total_volume(), time.perf_counter() - t0)
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("grouping  inter-node volume   seconds")
    for label, (vol, dt) in result.items():
        print(f"{label:>8s} {vol:18.0f} {dt:9.3f}")
    assert result["strong"][0] <= result["weak"][0] * 1.1
