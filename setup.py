"""Packaging metadata for the reproduction.

Plain ``setup.py`` on purpose: the build containers this repo targets
lack the ``wheel``/PEP 660 machinery, and the legacy setuptools
``develop`` path works everywhere ``pip install -e .`` does.  CI
installs ``pip install -e .[test]`` and runs the suite against the
installed package; the ``repro-map`` console script is the packaged
face of ``python -m repro.api``.
"""
from setuptools import find_packages, setup

setup(
    name="repro-taskmap",
    version="1.2.0",
    description=(
        "Reproduction of 'Fast and High Quality Topology-Aware Task "
        "Mapping' (IPDPS 2015) with a batch/serving execution engine"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
    ],
    extras_require={
        # Everything the tier-1 suite needs beyond the runtime deps;
        # ruff is included so the gated lint test participates in CI.
        "test": [
            "pytest",
            "hypothesis",
            "pytest-benchmark",
            # Chaos tests kill workers and respawn pools; a hang there
            # must fail CI with a faulthandler traceback dump, not eat
            # the job's 30-minute budget.  CI passes --timeout on the
            # command line; local runs without the plugin still work.
            "pytest-timeout",
            "ruff",
        ],
        # Optional JIT acceleration tier: repro.kernels.native compiles
        # the hottest kernels with numba when present.  Strictly
        # optional — everything falls back to the bit-identical NumPy
        # reference paths without it (see repro.kernels.backend).
        "native": [
            "numba>=0.57",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-map = repro.api.cli:main",
        ],
    },
)
