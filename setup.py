"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file lets
``pip install -e .`` fall back to the legacy setuptools `develop` path on
offline machines whose setuptools cannot build PEP 660 editable wheels.
"""
from setuptools import setup

setup()
