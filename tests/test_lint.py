"""Lint step of the test flow: run ruff when it is available.

The container baking the CI image may not ship ruff; in that case the
test skips rather than failing — the configuration in ``ruff.toml``
still documents the lint contract, and any environment with ruff
installed (developer laptops, richer CI) enforces it as part of the
ordinary pytest run.
"""

from __future__ import annotations

import os
import shutil
import subprocess

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "."],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}\n{proc.stderr}"


def test_ruff_config_present():
    """The lint contract ships with the repo even where ruff doesn't."""
    assert os.path.exists(os.path.join(REPO_ROOT, "ruff.toml"))
