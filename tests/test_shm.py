"""The zero-copy artifact plane: shm segments, tiering, OOB IPC, leaks.

What must hold:

* :class:`~repro.api.shm.SharedMemoryStore` round-trips every artifact
  kind byte for byte, hands out **read-only** views (mutation raises),
  refcounts attachments so ``delete`` unlinks the *name* immediately
  while live views keep reading, and an owner's ``close`` reaps every
  token-prefixed segment.
* A publisher killed mid-publish leaves an *uncommitted* segment:
  readers treat it as a miss and ``sweep_orphans`` reaps it under the
  same age-gated contract as the disk store's ``.tmp`` files.
* :class:`~repro.api.store.DiskArtifactStore` gains mmap'd lazy reads
  (still byte-identical), content-addressed save skipping, and a
  read-canary used to *prove* warm process batches do zero disk I/O.
* The tiered store keeps ``batch`` payloads shared-memory-only, and a
  pooled process batch — including one whose worker is killed —
  neither leaks segments nor rereads disk when warm.
"""

from __future__ import annotations

import gc
import os
import struct
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.api import (
    DiskArtifactStore,
    ExecutorPool,
    FaultInjector,
    MappingService,
    MapRequest,
    SharedMemoryStore,
    TieredArtifactStore,
    make_store,
    shm_available,
)
from repro.api.shm import _MAGIC, STORE_TIERS
from repro.api.store import READS_FORBIDDEN_ENV
from repro.graph.task_graph import TaskGraph
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.torus import Torus3D

needs_shm = pytest.mark.skipif(
    not shm_available(),
    reason="shared-memory store tier unavailable on this host",
)


class Opaque:
    """Module-level (hence picklable) type with no native codec kind —
    forces the pickle-protocol-5 out-of-band path."""

    def __init__(self, payload, label):
        self.payload = payload
        self.label = label


@pytest.fixture()
def workload():
    """16-task graph on 8 nodes × 2 processors (2x2x2 torus) — small
    enough for pooled tests on one core."""
    torus = Torus3D((2, 2, 2))
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=8, procs_per_node=2, fragmentation=0.3, seed=4)
    )
    rng = np.random.default_rng(7)
    n, m = 16, 90
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    tg = TaskGraph.from_edges(
        n, src[keep], dst[keep], rng.uniform(1, 5, keep.sum())
    )
    return tg, machine


def _request(tg, machine, tag, algos=("UG",), seed=3):
    return MapRequest(
        task_graph=tg, machine=machine, algorithms=algos, seed=seed, tag=tag
    )


def _assert_same_mapping(a, b):
    np.testing.assert_array_equal(a.fine_gamma, b.fine_gamma)
    np.testing.assert_array_equal(a.coarse_gamma, b.coarse_gamma)


def _token_segments(store: SharedMemoryStore):
    prefix = "rpr" + store.token
    try:
        return [n for n in os.listdir("/dev/shm") if n.startswith(prefix)]
    except OSError:
        return []


class TestDiskTierFeatures:
    """mmap reads, save skipping and the read canary need no shm."""

    def test_mmap_load_returns_read_only_views(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path), mmap_reads=True)
        value = {
            "a": np.arange(500, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 333),
        }
        store.save("grouping", "k", value)
        out = store.load("grouping", "k")
        np.testing.assert_array_equal(out["a"], value["a"])
        np.testing.assert_array_equal(out["b"], value["b"])
        assert not out["a"].flags.writeable
        with pytest.raises(ValueError):
            out["a"][0] = 99
        stats = store.stats()
        assert stats["tier"] == "disk"
        assert stats["mmap_reads"] is True
        assert stats["loads"] == 1 and stats["load_hits"] == 1

    def test_mmap_matches_eager_decoder(self, tmp_path):
        eager = DiskArtifactStore(str(tmp_path), mmap_reads=False)
        lazy = DiskArtifactStore(str(tmp_path), mmap_reads=True)
        value = {
            "c_order": np.arange(60, dtype=np.float64).reshape(6, 10),
            "f_order": np.asfortranarray(np.arange(24).reshape(4, 6)),
            "empty": np.zeros(0, dtype=np.int32),
            "scalar": 7,
            "nested": (np.arange(5), [1.5, "x"]),
        }
        eager.save("grouping", "same", value)
        a = eager.load("grouping", "same")
        b = lazy.load("grouping", "same")
        np.testing.assert_array_equal(a["c_order"], b["c_order"])
        np.testing.assert_array_equal(a["f_order"], b["f_order"])
        np.testing.assert_array_equal(a["empty"], b["empty"])
        assert a["scalar"] == b["scalar"]
        np.testing.assert_array_equal(a["nested"][0], b["nested"][0])
        assert a["nested"][1] == b["nested"][1]

    def test_save_skips_existing_matching_artifact(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        path = store.save("grouping", "k", np.arange(10))
        before = os.path.getmtime(path)
        time.sleep(0.01)
        again = store.save("grouping", "k", np.arange(10))
        assert again == path
        assert os.path.getmtime(path) == before  # untouched, not rewritten
        assert store.stats()["save_skips"] == 1
        # force=True rewrites (ArtifactCache.put revises DEF baselines).
        store.save("grouping", "k", np.arange(10), force=True)
        assert os.path.getmtime(path) >= before
        assert store.stats()["saves"] == 2

    def test_read_canary_raises_when_armed(self, tmp_path, monkeypatch):
        flag = tmp_path / "no-disk-reads"
        monkeypatch.setenv(READS_FORBIDDEN_ENV, str(flag))
        store = DiskArtifactStore(str(tmp_path / "store"))
        store.save("grouping", "k", np.arange(4))
        assert store.load("grouping", "k") is not None  # flag absent: fine
        flag.touch()
        with pytest.raises(RuntimeError, match="forbidden"):
            store.load("grouping", "k")

    def test_pickle5_out_of_band_roundtrip(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        obj = Opaque(np.arange(1000, dtype=np.float64), label="oob")
        store.save("grouping", "k", obj)
        out = store.load("grouping", "k")
        assert isinstance(out, Opaque) and out.label == "oob"
        np.testing.assert_array_equal(out.payload, obj.payload)


@needs_shm
class TestSharedMemoryStore:
    def test_round_trip_kinds_byte_identical(self, tmp_path, workload):
        tg, _ = workload
        store = SharedMemoryStore(str(tmp_path), owner=True)
        try:
            cases = {
                "arr": np.arange(777, dtype=np.int32),
                "f_order": np.asfortranarray(np.arange(24.0).reshape(4, 6)),
                "scalar": 3.5,
                "nested": {"t": (np.arange(9), [1, "x"]), "n": None},
                "graph": tg,
            }
            for key, value in cases.items():
                assert store.save("grouping", key, value)
            out = store.load("grouping", "arr")
            np.testing.assert_array_equal(out, cases["arr"])
            out = store.load("grouping", "f_order")
            np.testing.assert_array_equal(out, cases["f_order"])
            assert store.load("grouping", "scalar") == 3.5
            nested = store.load("grouping", "nested")
            np.testing.assert_array_equal(nested["t"][0], np.arange(9))
            assert nested["t"][1] == [1, "x"] and nested["n"] is None
            g2 = store.load("grouping", "graph")
            np.testing.assert_array_equal(g2.graph.indptr, tg.graph.indptr)
            np.testing.assert_array_equal(g2.graph.indices, tg.graph.indices)
            np.testing.assert_array_equal(g2.graph.weights, tg.graph.weights)
            assert store.load("grouping", "absent", default="d") == "d"
        finally:
            store.close()

    def test_views_are_read_only_and_zero_copy(self, tmp_path):
        store = SharedMemoryStore(str(tmp_path), owner=True)
        try:
            store.save("grouping", "k", np.arange(100, dtype=np.int64))
            view = store.load("grouping", "k")
            assert not view.flags.writeable
            assert not view.flags.owndata  # a view into the segment
            with pytest.raises(ValueError):
                view[0] = 1
        finally:
            store.close()

    def test_second_store_attaches_same_segment(self, tmp_path):
        writer = SharedMemoryStore(str(tmp_path), owner=True)
        reader = SharedMemoryStore(str(tmp_path), owner=False)
        try:
            writer.save("route_table", "k", np.arange(64, dtype=np.uint8))
            out = reader.load("route_table", "k")
            np.testing.assert_array_equal(out, np.arange(64, dtype=np.uint8))
            assert reader.contains("route_table", "k")
            del out
            gc.collect()
        finally:
            reader.close()
            writer.close()
        assert _token_segments(writer) == []

    def test_delete_unlinks_name_but_live_views_survive(self, tmp_path):
        store = SharedMemoryStore(str(tmp_path), owner=True)
        try:
            store.save("grouping", "k", np.arange(50))
            view = store.load("grouping", "k")
            assert store.delete("grouping", "k")
            # Name gone at once: fresh attaches and contains() miss.
            assert not store.contains("grouping", "k")
            assert store.load("grouping", "k", default="miss") == "miss"
            assert _token_segments(store) == []
            # ... but the live view still reads valid memory.
            np.testing.assert_array_equal(view, np.arange(50))
            assert store.stats()["attached_segments"] == 1
            del view
            gc.collect()
            # Last view died: the retired attachment closed with it.
            assert store.stats()["attached_segments"] == 0
        finally:
            store.close()

    def test_owner_close_reaps_token_segments(self, tmp_path):
        store = SharedMemoryStore(str(tmp_path), owner=True)
        for i in range(3):
            store.save("grouping", f"k{i}", np.arange(10 + i))
        assert store.segment_count() == 3
        assert store.segment_bytes() > 0
        store.close()
        assert _token_segments(store) == []
        # close is idempotent; a closed store declines publishes.
        store.close()
        assert store.save("grouping", "late", np.arange(3)) is False

    def test_non_owner_close_only_detaches(self, tmp_path):
        writer = SharedMemoryStore(str(tmp_path), owner=True)
        worker = SharedMemoryStore(str(tmp_path), owner=False)
        try:
            worker.save("grouping", "k", np.arange(5))
            worker.close()
            # The segment survives the worker: siblings still read it.
            assert writer.contains("grouping", "k")
        finally:
            writer.close()
        assert _token_segments(writer) == []

    def _orphan(self, store, namespace, key, nbytes=256):
        """Plant an *uncommitted* segment — a mid-publish crash corpse."""
        name = store.segment_name(namespace, key)
        seg = shared_memory.SharedMemory(create=True, size=nbytes, name=name)
        seg.buf[8:16] = struct.pack("<Q", 0)  # partial write, no magic
        seg.close()
        return name

    def test_uncommitted_segment_reads_as_miss(self, tmp_path):
        store = SharedMemoryStore(str(tmp_path), owner=True)
        try:
            self._orphan(store, "grouping", "torn")
            assert store.load("grouping", "torn", default="miss") == "miss"
            assert not store.contains("grouping", "torn")
        finally:
            store.close()

    def test_sweep_orphans_is_age_gated_and_spares_committed(self, tmp_path):
        store = SharedMemoryStore(str(tmp_path), owner=True)
        try:
            store.save("grouping", "live", np.arange(8))
            self._orphan(store, "grouping", "torn")
            # Young orphans survive (a live publisher may own them) ...
            assert store.sweep_orphans(min_age_s=3600) == 0
            assert len(_token_segments(store)) == 2
            # ... aged ones are reaped; committed artifacts never are.
            assert store.sweep_orphans(min_age_s=0) == 1
            names = _token_segments(store)
            assert names == [store.segment_name("grouping", "live")]
            assert store.load("grouping", "live") is not None
        finally:
            store.close()

    def test_publish_over_crash_corpse_retries_once(self, tmp_path):
        store = SharedMemoryStore(str(tmp_path), owner=True)
        try:
            self._orphan(store, "grouping", "k")
            assert store.save("grouping", "k", np.arange(12))
            np.testing.assert_array_equal(
                store.load("grouping", "k"), np.arange(12)
            )
        finally:
            store.close()


@needs_shm
class TestTieredStore:
    def test_batch_namespace_never_touches_disk(self, tmp_path, workload):
        tg, _ = workload
        store = TieredArtifactStore(str(tmp_path))
        try:
            store.save("batch", "b0", ("payload", tg))
            assert store.file_count("batch") == 0  # shm-only by design
            assert store.shm.contains("batch", "b0")
            out = store.load("batch", "b0")
            assert out[0] == "payload"
            np.testing.assert_array_equal(
                out[1].graph.indptr, tg.graph.indptr
            )
            store.delete("batch", "b0")
            assert not store.contains("batch", "b0")
        finally:
            store.close()

    def test_persistent_namespaces_write_through(self, tmp_path):
        store = TieredArtifactStore(str(tmp_path))
        try:
            store.save("grouping", "k", np.arange(30))
            assert store.shm.contains("grouping", "k")
            assert store.disk.contains("grouping", "k")
        finally:
            store.close()
        # The shm half is gone with its owner; disk is the durable tier.
        survivor = TieredArtifactStore(str(tmp_path))
        try:
            assert not survivor.shm.contains("grouping", "k")
            np.testing.assert_array_equal(
                survivor.load("grouping", "k"), np.arange(30)
            )
            # The disk hit was promoted: now mapped for the whole host.
            assert survivor.shm.contains("grouping", "k")
        finally:
            survivor.close()

    def test_make_store_resolution(self, tmp_path):
        disk = make_store(str(tmp_path), tier="disk")
        assert isinstance(disk, DiskArtifactStore) and disk.tier == "disk"
        shm = make_store(str(tmp_path), tier="shm")
        try:
            assert isinstance(shm, TieredArtifactStore) and shm.tier == "shm"
        finally:
            shm.close()
        auto = make_store(str(tmp_path), tier="auto")
        try:
            assert isinstance(auto, TieredArtifactStore)
        finally:
            auto.close()
        with pytest.raises(ValueError):
            make_store(str(tmp_path), tier="tape")
        assert set(STORE_TIERS) == {"auto", "shm", "disk"}

    def test_stats_expose_both_tiers(self, tmp_path):
        store = TieredArtifactStore(str(tmp_path))
        try:
            store.save("grouping", "k", np.arange(4))
            store.load("grouping", "k")
            stats = store.stats()
            assert stats["tier"] == "shm"
            assert stats["shm"]["publishes"] == 1
            assert stats["shm"]["load_hits"] == 1
            assert stats["shm"]["segments"] == 1
            assert stats["disk"]["tier"] == "disk"
        finally:
            store.close()


@needs_shm
class TestPooledZeroCopy:
    def test_warm_process_batch_does_zero_disk_reads(
        self, tmp_path, monkeypatch, workload
    ):
        """The headline contract: a warm pooled batch never reads disk.

        The canary flag makes *any* ``DiskArtifactStore.load`` — in the
        parent or any pool worker (the env var is inherited at spawn,
        the flag file is created later) — raise instead of read, so the
        warm batch succeeding is the proof, not a counter that might
        miss a process.
        """
        tg, machine = workload
        flag = tmp_path / "no-disk-reads"
        monkeypatch.setenv(READS_FORBIDDEN_ENV, str(flag))
        reqs = [_request(tg, machine, f"r{i}", algos=("UG", "UWH")) for i in range(2)]
        with ExecutorPool(
            "process",
            workers=2,
            store_dir=str(tmp_path / "store"),
            store_tier="shm",
        ) as pool:
            service = MappingService(pool=pool)
            cold = service.map_batch(reqs)
            assert all(r.ok for r in cold)
            # Fresh workers: private in-memory caches are gone, so the
            # warm batch must come from the artifact plane.
            pool.respawn()
            flag.touch()  # from here on, a disk read raises
            warm = service.map_batch(reqs)
            assert all(r.ok for r in warm)
            for a, b in zip(cold, warm):
                _assert_same_mapping(a, b)
            stats = pool.stats()["store"]
            assert stats["tier"] == "shm"
            assert stats["disk"]["loads"] == 0  # parent did no disk reads
            assert stats["shm"]["publishes"] > 0

    def test_worker_kill_heals_and_leaks_no_segments(self, tmp_path, workload):
        """A worker killed mid-batch must not leak shm segments: the
        batch heals on the respawned pool and the owner's close reaps
        everything token-prefixed, including the dead worker's
        publishes."""
        tg, machine = workload
        inj = FaultInjector(str(tmp_path / "faults"))
        reqs = [_request(tg, machine, f"r{i}") for i in range(4)]
        baseline = MappingService().map_batch(reqs)
        with inj:
            inj.arm("kill-worker", "r2")
            with ExecutorPool(
                "process",
                workers=2,
                store_dir=str(tmp_path / "store"),
                store_tier="shm",
            ) as pool:
                token = pool.store.shm.token
                service = MappingService(pool=pool)
                out = service.map_batch(reqs, on_error="partial")
                assert all(r.ok for r in out)
                for a, b in zip(baseline, out):
                    _assert_same_mapping(a, b)
                assert pool.restarts == 1
        inj.disarm()
        leftovers = [
            n for n in os.listdir("/dev/shm") if n.startswith("rpr" + token)
        ]
        assert leftovers == []

    def test_batch_payload_stays_off_disk_under_shm_tier(
        self, tmp_path, workload
    ):
        tg, machine = workload
        store_dir = tmp_path / "store"
        with ExecutorPool(
            "process", workers=2, store_dir=str(store_dir), store_tier="shm"
        ) as pool:
            service = MappingService(pool=pool)
            out = service.map_batch([_request(tg, machine, "r0")])
            assert out[0].ok
            assert pool.store.file_count("batch") == 0
            assert not (store_dir / "batch").exists()
