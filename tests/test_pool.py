"""Tests for the serving layer's ExecutorPool and the --follow CLI mode.

Pins the pool lifecycle contracts the ISSUE names: lazy spawn, reuse
across batches (byte-identical to serial), idle reap + lazy respawn,
re-init on config change, and a shutdown that leaves no stray worker
processes.  The follow-mode tests drive the long-running serve loop of
``python -m repro.api map-batch --follow`` over an in-memory stdin.
"""

from __future__ import annotations

import io
import json
import os
import sys
import time

import numpy as np
import pytest

from repro.api import ExecutorPool, MappingService, MapRequest
from repro.api.pool import POOL_BACKENDS
from repro.graph.task_graph import TaskGraph
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.torus import Torus3D


@pytest.fixture()
def setup():
    """24-rank task graph on 8 nodes × 3 processors (4x4x2 torus)."""
    torus = Torus3D((4, 4, 2))
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=8, procs_per_node=3, fragmentation=0.3, seed=4)
    )
    rng = np.random.default_rng(7)
    n, m = 24, 160
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], rng.uniform(1, 5, keep.sum()))
    return tg, machine


def _request(tg, machine, algos=("DEF", "UG", "UWH", "UMC", "SFC"), seed=2):
    return MapRequest(
        task_graph=tg, machine=machine, algorithms=algos, seed=seed, evaluate=True
    )


def _assert_identical(serial, responses):
    assert len(serial) == len(responses)
    for a, b in zip(serial, responses):
        assert a.algorithm == b.algorithm
        np.testing.assert_array_equal(a.fine_gamma, b.fine_gamma)
        np.testing.assert_array_equal(a.coarse_gamma, b.coarse_gamma)
        assert a.metrics.as_dict() == b.metrics.as_dict()


class TestPoolLifecycle:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ExecutorPool("serial")
        with pytest.raises(ValueError):
            ExecutorPool("thread", idle_timeout=0)
        assert POOL_BACKENDS == ("thread", "process")

    def test_lazy_spawn_and_reuse_across_batches(self, setup):
        """No workers until the first batch; one spawn serves many."""
        tg, machine = setup
        request = _request(tg, machine)
        serial = MappingService().map_batch(request, backend="serial")
        with ExecutorPool("thread", workers=2) as pool:
            service = MappingService(pool=pool)
            assert pool.spawn_count == 0 and not pool.executor_alive
            _assert_identical(serial, service.map_batch(request))
            _assert_identical(serial, service.map_batch(request))
            _assert_identical(serial, service.map_batch(request))
            assert pool.spawn_count == 1
        assert pool.closed

    def test_process_pool_parity_and_store_warmth(self, setup):
        """Persistent process workers share one store across batches."""
        tg, machine = setup
        request = _request(tg, machine)
        serial = MappingService().map_batch(request, backend="serial")
        with ExecutorPool("process", workers=2) as pool:
            service = MappingService(pool=pool)
            cold = service.map_batch(request)
            _assert_identical(serial, cold)
            # The shared grouping was computed exactly once, pool-wide.
            assert pool.store.file_count("grouping") == 1
            warm = service.map_batch(request)
            _assert_identical(serial, warm)
            # Warm batch: the grouping artifact comes from the store /
            # worker caches, so no response pays prep_time for it.
            assert all(
                r.grouping_cached
                for r in warm
                if r.algorithm not in ("DEF", "TMAP")
            )
            assert pool.spawn_count == 1

    def test_batch_payload_retired_after_batch(self, setup):
        tg, machine = setup
        with ExecutorPool("process", workers=2) as pool:
            service = MappingService(pool=pool)
            service.map_batch(_request(tg, machine, algos=("UG",)))
            assert pool.store.file_count("batch") == 0

    def test_idle_reap_and_lazy_respawn(self, setup):
        tg, machine = setup
        request = _request(tg, machine, algos=("UG",))
        with ExecutorPool("thread", workers=2, idle_timeout=0.2) as pool:
            service = MappingService(pool=pool)
            service.map_batch(request)
            assert pool.executor_alive
            deadline = time.monotonic() + 5.0
            while pool.executor_alive and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not pool.executor_alive, "idle workers were not reaped"
            # The pool is still serviceable: next batch respawns.
            service.map_batch(request)
            assert pool.executor_alive
            assert pool.spawn_count == 2

    def test_configure_reinit_on_change_only(self, setup):
        tg, machine = setup
        request = _request(tg, machine, algos=("UG",))
        with ExecutorPool("thread", workers=2) as pool:
            service = MappingService(pool=pool)
            service.map_batch(request)
            assert pool.spawn_count == 1
            assert pool.configure(workers=2) is False  # no-op keeps workers
            assert pool.executor_alive
            assert pool.configure(workers=3) is True  # change tears down
            assert not pool.executor_alive
            service.map_batch(request)
            assert pool.spawn_count == 2 and pool.workers == 3
            with pytest.raises(ValueError):
                pool.configure(backend="gpu")

    def test_configure_rejected_mid_batch(self, setup):
        with ExecutorPool("thread", workers=1) as pool:
            with pool.session():
                with pytest.raises(RuntimeError):
                    pool.configure(workers=4)

    def test_constructor_serial_default_bypasses_pool(self, setup):
        """An explicit backend="serial" beside a pool stays honored."""
        tg, machine = setup
        with ExecutorPool("thread", workers=2) as pool:
            service = MappingService(backend="serial", pool=pool)
            service.map_batch(_request(tg, machine, algos=("UG",)))
            assert pool.spawn_count == 0
            # The pool remains available to explicit per-call overrides.
            service.map_batch(_request(tg, machine, algos=("UG",)), backend="thread")
            assert pool.spawn_count == 1

    def test_per_call_override_reconfigures_pool(self, setup):
        tg, machine = setup
        request = _request(tg, machine, algos=("UG",))
        with ExecutorPool("thread", workers=2) as pool:
            service = MappingService(pool=pool)
            service.map_batch(request, workers=1)
            assert pool.workers == 1
            # backend="serial" bypasses the pool entirely.
            service.map_batch(request, backend="serial")
            assert pool.spawn_count == 1

    def test_service_level_workers_reach_the_pool(self, setup):
        """MappingService(workers=) means the same with or without a pool."""
        tg, machine = setup
        with ExecutorPool("thread") as pool:
            service = MappingService(pool=pool, workers=3)
            service.map_batch(_request(tg, machine, algos=("UG",)))
            assert pool.workers == 3

    def test_store_access_after_shutdown_rejected(self):
        pool = ExecutorPool("thread")
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.store

    def test_shutdown_leaves_no_stray_processes(self, setup):
        tg, machine = setup
        pool = ExecutorPool("process", workers=2)
        MappingService(pool=pool).map_batch(_request(tg, machine, algos=("UG",)))
        pids = pool.worker_pids()
        assert len(pids) >= 1
        pool.shutdown()
        pool.shutdown()  # idempotent
        for pid in pids:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"worker {pid} survived pool shutdown")
        with pytest.raises(RuntimeError):
            with pool.session():
                pass

    def test_temporary_store_removed_at_shutdown(self, setup):
        pool = ExecutorPool("thread")
        root = pool.store.root
        assert os.path.isdir(root)
        pool.shutdown()
        assert not os.path.exists(root)

    def test_explicit_store_dir_survives_shutdown(self, setup, tmp_path):
        tg, machine = setup
        store_dir = str(tmp_path / "artifacts")
        with ExecutorPool("process", workers=2, store_dir=store_dir) as pool:
            MappingService(pool=pool).map_batch(_request(tg, machine, algos=("UG",)))
        assert os.path.isdir(store_dir)  # caller-owned directory persists
        # A later pool over the same directory serves warm artifacts.
        with ExecutorPool("process", workers=2, store_dir=store_dir) as pool:
            responses = MappingService(pool=pool).map_batch(
                _request(tg, machine, algos=("UG",))
            )
            assert all(r.grouping_cached for r in responses)


class TestFollowCli:
    def _run(self, monkeypatch, lines, argv):
        from repro.api.cli import main

        monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        return main(argv)

    def test_stream_serves_batches_with_warm_caches(self, monkeypatch, capsys):
        lines = [
            '{"defaults": {"procs": 32, "ppn": 4, "algos": "UG,SFC"}}',
            '{"matrix": "cage15_like", "tag": "a"}',
            "",
            '[{"matrix": "cage15_like", "algos": "UWH", "tag": "b"},'
            ' {"matrix": "cage15_like", "seed": 3, "tag": "c"}]',
        ]
        rc = self._run(
            monkeypatch,
            lines,
            [
                "map-batch",
                "--follow",
                "--manifest",
                "-",
                "--backend",
                "thread",
                "--workers",
                "2",
            ],
        )
        assert rc == 0
        out_lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert [o["batch"] for o in out_lines] == [1, 2]
        assert [r["algorithm"] for r in out_lines[0]["results"]] == ["UG", "SFC"]
        tags = [r["tag"] for r in out_lines[1]["results"]]
        assert tags == ["b", "c", "c"]
        # Batch 2's UWH rides batch 1's cached grouping — the serve
        # loop's whole point.
        uwh = out_lines[1]["results"][0]
        assert uwh["grouping_cached"] is True

    def test_bad_lines_do_not_kill_the_server(self, monkeypatch, capsys):
        lines = [
            "this is not json",
            '{"algos": "UG"}',
            '{"matrix": "cage15_like", "procs": 32, "ppn": 4, "algos": "UG"}',
        ]
        rc = self._run(
            monkeypatch, lines, ["map-batch", "--follow", "--manifest", "-"]
        )
        assert rc == 0
        out_lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert "error" in out_lines[0] and out_lines[0]["line"] == 1
        assert "error" in out_lines[1] and out_lines[1]["line"] == 2
        assert out_lines[2]["batch"] == 1

    def test_follow_reads_manifest_file(self, tmp_path, capsys):
        from repro.api.cli import main

        stream = tmp_path / "stream.jsonl"
        stream.write_text(
            '{"matrix": "cage15_like", "procs": 32, "ppn": 4, "algos": "UG"}\n'
        )
        rc = main(["map-batch", "--follow", "--manifest", str(stream)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["requests"] == 1
