"""Tests for the column-net hypergraph model, with brute-force oracles."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import cage_like
from repro.hypergraph.model import Hypergraph


def brute_force_comm(pattern: sp.csr_array, part: np.ndarray, k: int):
    """Naive TV/TM/MSV/MSM + directed volumes from first principles."""
    n = pattern.shape[0]
    csc = sp.csc_array(pattern)
    vol = {}
    for j in range(n):
        pins = csc.indices[csc.indptr[j] : csc.indptr[j + 1]]
        owner = part[j]
        targets = {int(part[i]) for i in pins} - {int(owner)}
        for q in targets:
            vol[(int(owner), q)] = vol.get((int(owner), q), 0) + 1
    tv = sum(vol.values())
    tm = len(vol)
    send = np.zeros(k)
    sendm = np.zeros(k, dtype=int)
    for (p, _q), v in vol.items():
        send[p] += v
        sendm[p] += 1
    return tv, tm, send, sendm, vol


class TestStructure:
    def test_from_matrix_pins(self):
        m = cage_like(50, seed=0)
        h = Hypergraph.from_matrix(m)
        assert h.num_vertices == 50 and h.num_nets == 50
        for j in (0, 10, 49):
            assert j in h.pins(j), "diagonal pin must exist"

    def test_vertex_incidence_transpose(self):
        m = cage_like(60, seed=1)
        h = Hypergraph.from_matrix(m)
        for v in (0, 5, 59):
            for j in h.nets_of(v):
                assert v in h.pins(int(j))

    def test_loads_are_row_nnz(self):
        m = cage_like(40, seed=2)
        h = Hypergraph.from_matrix(m)
        assert np.array_equal(h.loads, m.row_nnz())

    def test_malformed_csr_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(2, np.array([0, 1]), np.array([5], dtype=np.int32))


class TestConnectivityMetrics:
    def test_single_part_no_communication(self):
        m = cage_like(30, seed=0)
        h = Hypergraph.from_matrix(m)
        part = np.zeros(30, dtype=np.int64)
        assert h.total_volume(part, 1) == 0.0
        assert h.cut_nets(part, 1) == 0
        src, dst, vol = h.comm_triplets(part, 1)
        assert src.size == 0

    def test_connectivity_lambda_bounds(self):
        m = cage_like(100, seed=1)
        h = Hypergraph.from_matrix(m)
        part = np.arange(100) % 4
        lam = h.connectivity(part, 4)
        assert np.all(lam >= 1) and np.all(lam <= 4)

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_against_brute_force(self, k):
        m = cage_like(80, seed=3)
        h = Hypergraph.from_matrix(m)
        rng = np.random.default_rng(4)
        part = rng.integers(0, k, size=80)
        tv, tm, send, sendm, vol = brute_force_comm(m.pattern, part, k)
        assert h.total_volume(part, k) == pytest.approx(tv)
        src, dst, v = h.comm_triplets(part, k)
        got = {}
        for s, d, w in zip(src, dst, v):
            got[(int(s), int(d))] = got.get((int(s), int(d)), 0) + w
        assert got == vol

    def test_part_loads(self):
        m = cage_like(20, seed=0)
        h = Hypergraph.from_matrix(m)
        part = np.array([0] * 10 + [1] * 10)
        loads = h.part_loads(part, 2)
        assert loads.sum() == pytest.approx(h.loads.sum())


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 5), st.integers(0, 1000))
def test_property_tv_equals_triplet_sum(k, seed):
    """TV computed from λ must equal the sum of directed triplet volumes."""
    m = cage_like(60, seed=seed % 17)
    h = Hypergraph.from_matrix(m)
    rng = np.random.default_rng(seed)
    part = rng.integers(0, k, size=60)
    _, _, vol = h.comm_triplets(part, k)
    assert vol.sum() == pytest.approx(h.total_volume(part, k))
