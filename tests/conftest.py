"""Shared fixtures: small deterministic workloads and machines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.shm import shm_available
from repro.graph import TaskGraph, cage_like, rgg_like
from repro.hypergraph import Hypergraph
from repro.kernels.backend import numba_available, use_backend
from repro.topology import AllocationSpec, SparseAllocator, Torus3D

#: The kernel-backend axis: tests parametrized with this run once per
#: backend, with the numba leg skipping (with its reason visible in the
#: -rs summary) wherever the optional dependency is absent.  The numpy
#: leg replaces the implicit default rather than adding to it, so a
#: numba-less run keeps its test count.
KERNEL_BACKEND_PARAMS = [
    pytest.param("numpy"),
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(
            not numba_available(),
            reason="numba is not installed (pip install -e .[native])",
        ),
    ),
]


@pytest.fixture(params=KERNEL_BACKEND_PARAMS)
def kernel_backend(request):
    """Run the test under each kernel backend (numpy always; numba when
    installed), restoring the process-wide backend afterwards."""
    with use_backend(request.param):
        yield request.param


#: The store-tier axis: tests parametrized with this run per artifact
#: store tier.  The disk leg always runs; shm and auto skip (visibly)
#: on hosts without a working shared-memory filesystem, where auto
#: would just resolve to the disk leg anyway.
_SHM_SKIP = pytest.mark.skipif(
    not shm_available(),
    reason="shared-memory store tier unavailable on this host",
)
STORE_TIER_PARAMS = [
    pytest.param("disk"),
    pytest.param("shm", marks=_SHM_SKIP),
    pytest.param("auto", marks=_SHM_SKIP),
]


@pytest.fixture(params=STORE_TIER_PARAMS)
def store_tier(request):
    """Run the test under each artifact store tier."""
    return request.param


@pytest.fixture(scope="session")
def small_matrix():
    """A 400-row cage-like matrix (fast to partition)."""
    return cage_like(400, seed=7)


@pytest.fixture(scope="session")
def small_hypergraph(small_matrix):
    return Hypergraph.from_matrix(small_matrix)


@pytest.fixture(scope="session")
def rgg_matrix():
    return rgg_like(500, seed=3)


@pytest.fixture()
def torus444():
    return Torus3D((4, 4, 4))


@pytest.fixture()
def machine16(torus444):
    """16 allocated nodes (1 proc each) on a 4x4x4 torus."""
    return SparseAllocator(torus444).allocate(
        AllocationSpec(num_nodes=16, procs_per_node=1, fragmentation=0.3, seed=5)
    )


@pytest.fixture()
def ring_task_graph():
    """8-task directed ring with unit volumes and unit loads."""
    src = list(range(8))
    dst = [(i + 1) % 8 for i in range(8)]
    return TaskGraph.from_edges(8, src, dst, [1.0] * 8)


@pytest.fixture()
def random_task_graph():
    """A 16-task random sparse task graph (deterministic)."""
    rng = np.random.default_rng(11)
    m = 60
    src = rng.integers(0, 16, size=m)
    dst = rng.integers(0, 16, size=m)
    keep = src != dst
    vol = rng.integers(1, 9, size=m).astype(float)
    return TaskGraph.from_edges(16, src[keep], dst[keep], vol[keep])
