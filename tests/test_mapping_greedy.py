"""Tests for Algorithm 1 (Greedy Mapping / UG)."""

import numpy as np
import pytest

from repro.graph.task_graph import TaskGraph
from repro.mapping.base import wh_of
from repro.mapping.greedy import GreedyMapper, greedy_map
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.machine import Machine
from repro.topology.torus import Torus3D


@pytest.fixture()
def machine8():
    torus = Torus3D((4, 4, 2))
    return SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=8, procs_per_node=1, fragmentation=0.3, seed=2)
    )


class TestValidity:
    def test_one_to_one_mapping(self, machine8, ring_task_graph):
        gamma = greedy_map(ring_task_graph, machine8)
        assert np.unique(gamma).shape[0] == 8  # all distinct nodes
        assert machine8.alloc_mask()[gamma].all()

    def test_respects_capacities_multi(self):
        torus = Torus3D((3, 3, 1))
        machine = Machine(torus, [0, 1, 2, 3], procs_per_node=2)
        tg = TaskGraph.from_edges(
            8,
            list(range(7)),
            list(range(1, 8)),
            [1.0] * 7,
        )
        gamma = greedy_map(tg, machine)
        used = np.bincount(gamma, minlength=torus.num_nodes)
        caps = machine.node_capacities()
        assert np.all(used <= caps)

    def test_disconnected_task_graph(self, machine8):
        # Two disjoint 4-cycles.
        src = [0, 1, 2, 3, 4, 5, 6, 7]
        dst = [1, 2, 3, 0, 5, 6, 7, 4]
        tg = TaskGraph.from_edges(8, src, dst, [1.0] * 8)
        gamma = greedy_map(tg, machine8)
        assert np.unique(gamma).shape[0] == 8

    def test_no_communication(self, machine8):
        tg = TaskGraph.from_edges(8, [], [], [])
        gamma = greedy_map(tg, machine8)
        assert np.unique(gamma).shape[0] == 8


class TestQuality:
    def test_beats_random_on_average(self, machine8):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 8, 24)
        dst = rng.integers(0, 8, 24)
        keep = src != dst
        tg = TaskGraph.from_edges(8, src[keep], dst[keep], rng.uniform(1, 5, keep.sum()))
        ug = GreedyMapper().map(tg, machine8)
        ug_wh = wh_of(tg, machine8, ug.gamma)
        rand_whs = []
        for s in range(20):
            perm = np.random.default_rng(s).permutation(machine8.alloc_nodes)
            rand_whs.append(wh_of(tg, machine8, perm[:8]))
        assert ug_wh <= np.mean(rand_whs)

    def test_heavy_pair_placed_adjacent(self):
        """Two tasks exchanging almost all volume should land close."""
        torus = Torus3D((4, 4, 4))
        machine = Machine(torus, list(range(0, 64, 4)), procs_per_node=1)
        src = [0, 0, 1, 2]
        dst = [1, 2, 3, 4]
        vol = [100.0, 1.0, 1.0, 1.0]
        tg = TaskGraph.from_edges(8, src + list(range(4, 7)), dst + list(range(5, 8)), vol + [1.0] * 3)
        gamma = greedy_map(tg, machine)
        d_heavy = int(torus.hop_distance(int(gamma[0]), int(gamma[1])))
        dists = [
            int(torus.hop_distance(int(gamma[a]), int(gamma[b])))
            for a in range(8)
            for b in range(a + 1, 8)
        ]
        assert d_heavy <= np.median(dists)

    def test_nbfs_best_of_two(self, machine8, random_task_graph):
        tg_small = TaskGraph.from_edges(8, [0, 2, 4], [1, 3, 5], [3.0, 2.0, 1.0])
        mapper = GreedyMapper(nbfs_candidates=(0, 1))
        m = mapper.map(tg_small, machine8)
        wh_best = wh_of(tg_small, machine8, m.gamma)
        for nbfs in (0, 1):
            gamma = greedy_map(tg_small, machine8, nbfs=nbfs)
            assert wh_best <= wh_of(tg_small, machine8, gamma) + 1e-9

    def test_deterministic(self, machine8, random_task_graph):
        tg = TaskGraph.from_edges(8, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        a = greedy_map(tg, machine8)
        b = greedy_map(tg, machine8)
        assert np.array_equal(a, b)


class TestNonUniform:
    def test_rare_weight_groups_first(self):
        """Groups with non-modal weight get matching-capacity nodes."""
        torus = Torus3D((3, 3, 1))
        machine = Machine(torus, [0, 1, 2], procs_per_node=np.array([4, 2, 2]))
        tg = TaskGraph.from_edges(
            3, [0, 1], [1, 2], [1.0, 1.0],
            loads=np.array([4.0, 2.0, 2.0]),
        )
        gamma = greedy_map(tg, machine)
        # the weight-4 group must sit on the capacity-4 node 0
        assert gamma[0] == 0
