"""Tests for coarsening, initial bisection, FM and the k-way driver."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import cage_like, rgg_like
from repro.partition.coarsen import coarsen_graph, contract, heavy_edge_matching
from repro.partition.driver import partition_graph
from repro.partition.fm import balance_fixup, fm_bisection_refine, greedy_bisection_refine
from repro.partition.initial import best_bisection, greedy_grow_bisection
from repro.util.rng import seeded_rng


def path_graph(n, w=1.0):
    src = list(range(n - 1)) + list(range(1, n))
    dst = list(range(1, n)) + list(range(n - 1))
    return CSRGraph.from_edges(n, src, dst, [w] * (2 * (n - 1)))


def cut_of(graph, side):
    s, d, w = graph.edge_list()
    return float(w[side[s] != side[d]].sum()) / 2.0


class TestMatching:
    def test_matching_is_symmetric(self):
        g = cage_like(200, seed=0).structure_graph()
        mate = heavy_edge_matching(g, seeded_rng(0))
        for v, m in enumerate(mate):
            if m >= 0:
                assert mate[m] == v
                assert m != v

    def test_matching_respects_weight_cap(self):
        g = CSRGraph.from_edges(
            4, [0, 1, 2, 3], [1, 0, 3, 2], vertex_weights=np.array([5.0, 5.0, 1.0, 1.0])
        )
        mate = heavy_edge_matching(g, seeded_rng(0), max_vertex_weight=6.0)
        assert mate[0] == -1 and mate[1] == -1  # pair would weigh 10 > 6
        assert mate[2] == 3

    def test_matching_prefers_heavy_edges(self):
        # Triangle where edge (0,1) is much heavier.
        g = CSRGraph.from_edges(
            3, [0, 1, 0, 2, 1, 2], [1, 0, 2, 0, 2, 1], [10, 10, 1, 1, 1, 1]
        )
        mate = heavy_edge_matching(g, seeded_rng(0))
        assert mate[0] == 1 and mate[1] == 0

    def test_contract_preserves_total_vertex_weight(self):
        g = cage_like(150, seed=1).structure_graph()
        mate = heavy_edge_matching(g, seeded_rng(1))
        coarse, f2c = contract(g, mate)
        assert coarse.vertex_weights.sum() == pytest.approx(g.vertex_weights.sum())
        assert f2c.max() == coarse.num_vertices - 1

    def test_coarsen_hierarchy_shrinks(self):
        g = cage_like(600, seed=2).structure_graph()
        levels = coarsen_graph(g, target_vertices=40, seed=0)
        sizes = [l.graph.num_vertices for l in levels]
        assert sizes[0] == 600
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] <= 2 * 40 + 20  # close to target


class TestInitialBisection:
    def test_grow_reaches_target(self):
        g = path_graph(40)
        side = greedy_grow_bisection(g, 20.0, seed_vertex=0)
        w0 = g.vertex_weights[side == 0].sum()
        assert abs(w0 - 20) <= 2

    def test_path_bisection_cut_is_small(self):
        g = path_graph(64)
        side = best_bisection(g, 32.0, seed=0)
        assert cut_of(g, side) <= 2.0  # ideal is 1

    def test_handles_disconnected(self):
        g = CSRGraph.from_edges(6, [0, 1, 3, 4], [1, 2, 4, 5]).symmetrized()
        side = best_bisection(g, 3.0, seed=0)
        assert set(np.unique(side)) <= {0, 1}
        assert abs(g.vertex_weights[side == 0].sum() - 3.0) <= 1.0

    def test_tiny_graphs(self):
        assert best_bisection(CSRGraph.empty(0), 0.0).size == 0
        assert list(best_bisection(CSRGraph.empty(1), 1.0)) == [0]


class TestFM:
    def test_fm_improves_bad_bisection(self):
        g = path_graph(32)
        side = (np.arange(32) % 2).astype(np.int64)  # alternating: terrible cut
        refined = fm_bisection_refine(g, side, 16.0, slack=2.0, max_passes=8)
        assert cut_of(g, refined) < cut_of(g, side)

    def test_greedy_improves_bad_bisection(self):
        g = path_graph(64)
        side = (np.arange(64) % 2).astype(np.int64)
        refined = greedy_bisection_refine(g, side, 32.0, slack=2.0, max_passes=8)
        assert cut_of(g, refined) < cut_of(g, side)

    def test_greedy_enforces_balance(self):
        g = path_graph(40)
        side = np.zeros(40, dtype=np.int64)  # everything on one side
        refined = greedy_bisection_refine(g, side, 20.0, slack=2.0, max_passes=3)
        w0 = g.vertex_weights[refined == 0].sum()
        assert abs(w0 - 20.0) <= 2.5

    def test_balance_preserved_by_fm(self):
        g = cage_like(200, seed=0).structure_graph()
        total = g.vertex_weights.sum()
        side = (np.arange(200) < 100).astype(np.int64)
        refined = fm_bisection_refine(g, side, total / 2, slack=total * 0.05)
        w0 = g.vertex_weights[refined == 0].sum()
        assert abs(w0 - total / 2) <= total * 0.05 + g.vertex_weights.max()


class TestBalanceFixup:
    def test_exact_balance_unit_weights(self):
        g = path_graph(16)
        part = np.zeros(16, dtype=np.int64)
        part[12:] = 1  # 12 / 4 split, target 8 / 8
        targets = np.array([8.0, 8.0])
        fixed = balance_fixup(g, part, 2, targets)
        loads = np.bincount(fixed, weights=g.vertex_weights, minlength=2)
        assert list(loads) == [8.0, 8.0]

    def test_respects_capacity_sum_check(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            balance_fixup(g, np.zeros(4, dtype=np.int64), 2, np.array([1.0, 1.0]))

    def test_prefers_low_cut_moves(self):
        # Path 0-1-2-3; part {0,1,2} vs {3}; target 2/2.  Moving vertex 2
        # (attached to 3) costs less than moving 0 or 1.
        g = path_graph(4)
        part = np.array([0, 0, 0, 1])
        fixed = balance_fixup(g, part, 2, np.array([2.0, 2.0]))
        assert list(fixed) == [0, 0, 1, 1]

    def test_kway_exact(self):
        g = cage_like(64, seed=3).structure_graph()
        work = CSRGraph(
            g.indptr, g.indices, g.weights, np.ones(64), sorted_indices=True
        )
        rng = np.random.default_rng(0)
        part = rng.integers(0, 4, size=64)
        targets = np.full(4, 16.0)
        fixed = balance_fixup(work, part, 4, targets)
        assert np.array_equal(
            np.bincount(fixed, minlength=4), np.array([16, 16, 16, 16])
        )


class TestDriver:
    @pytest.mark.parametrize("k", [2, 3, 8, 13])
    def test_partition_valid_and_balanced(self, k):
        g = cage_like(400, seed=0).structure_graph()
        res = partition_graph(g, k, seed=1)
        assert res.part.shape == (400,)
        assert res.part.min() >= 0 and res.part.max() < k
        loads = np.bincount(res.part, weights=g.vertex_weights, minlength=k)
        target = g.vertex_weights.sum() / k
        assert loads.max() <= target * 1.12

    def test_nonuniform_targets(self):
        g = cage_like(300, seed=1).structure_graph()
        total = float(g.vertex_weights.sum())
        targets = np.array([0.5, 0.25, 0.25]) * total
        res = partition_graph(g, 3, target_weights=targets, seed=0)
        loads = np.bincount(res.part, weights=g.vertex_weights, minlength=3)
        assert loads[0] > loads[1] * 1.5  # the big part really is bigger

    def test_k_equals_one(self):
        g = path_graph(10)
        res = partition_graph(g, 1)
        assert np.all(res.part == 0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            partition_graph(path_graph(4), 0)

    def test_target_length_mismatch(self):
        with pytest.raises(ValueError):
            partition_graph(path_graph(4), 2, target_weights=[1.0])

    def test_deterministic_given_seed(self):
        g = rgg_like(300, seed=0).structure_graph()
        a = partition_graph(g, 8, seed=5).part
        b = partition_graph(g, 8, seed=5).part
        assert np.array_equal(a, b)

    def test_more_parts_than_vertices(self):
        g = path_graph(3)
        res = partition_graph(g, 5, seed=0)
        assert res.part.max() < 5  # valid even with empty parts
