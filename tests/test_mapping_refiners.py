"""Tests for Algorithm 2 (WH refinement) and Algorithm 3 (MC refinement)."""

import numpy as np
import pytest

from repro.graph.task_graph import TaskGraph
from repro.mapping.base import Mapping, wh_of
from repro.mapping.greedy import GreedyMapper
from repro.mapping.refine_mc import MCRefiner, _CongestionState
from repro.mapping.refine_wh import WHRefiner, _swap_gain, _task_whops
from repro.metrics.mapping import evaluate_mapping
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.torus import Torus3D


@pytest.fixture()
def setup16():
    torus = Torus3D((4, 4, 4))
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=16, procs_per_node=1, fragmentation=0.4, seed=7)
    )
    rng = np.random.default_rng(1)
    m = 70
    src = rng.integers(0, 16, m)
    dst = rng.integers(0, 16, m)
    keep = src != dst
    tg = TaskGraph.from_edges(16, src[keep], dst[keep], rng.uniform(1, 6, keep.sum()))
    return tg, machine


def bad_mapping(tg, machine, seed=0):
    """A deliberately shuffled (poor) one-to-one mapping."""
    perm = np.random.default_rng(seed).permutation(machine.alloc_nodes)
    return Mapping(perm[: tg.num_tasks].copy(), machine)


class TestWHRefiner:
    def test_wh_never_increases(self, setup16):
        tg, machine = setup16
        start = bad_mapping(tg, machine)
        wh0 = wh_of(tg, machine, start.gamma)
        refined = WHRefiner().refine(tg, start)
        assert wh_of(tg, machine, refined.gamma) <= wh0

    def test_input_mapping_untouched(self, setup16):
        tg, machine = setup16
        start = bad_mapping(tg, machine)
        before = start.gamma.copy()
        WHRefiner().refine(tg, start)
        assert np.array_equal(start.gamma, before)

    def test_stays_one_to_one(self, setup16):
        tg, machine = setup16
        refined = WHRefiner().refine(tg, bad_mapping(tg, machine))
        assert np.unique(refined.gamma).shape[0] == tg.num_tasks

    def test_improves_bad_mapping_substantially(self, setup16):
        tg, machine = setup16
        start = bad_mapping(tg, machine, seed=3)
        wh0 = wh_of(tg, machine, start.gamma)
        refined = WHRefiner().refine(tg, start)
        assert wh_of(tg, machine, refined.gamma) < wh0 * 0.98

    def test_swap_gain_matches_recompute(self, setup16):
        """_swap_gain must equal the WH difference of actually swapping."""
        tg, machine = setup16
        sym = tg.symmetrized()
        gamma = bad_mapping(tg, machine, seed=5).gamma
        torus = machine.torus
        rng = np.random.default_rng(2)
        for _ in range(20):
            t1, t2 = rng.choice(16, size=2, replace=False)
            gain = _swap_gain(int(t1), int(t2), sym, torus, gamma)
            swapped = gamma.copy()
            swapped[t1], swapped[t2] = gamma[t2], gamma[t1]
            # wh_of counts each undirected edge twice (symmetric graph),
            # _swap_gain works on the symmetrized view too.
            delta = (wh_of(tg, machine, gamma) - wh_of(tg, machine, swapped))
            assert gain == pytest.approx(delta, rel=1e-9, abs=1e-9)

    def test_task_whops_zero_for_isolated(self, setup16):
        tg, machine = setup16
        tg_iso = TaskGraph.from_edges(16, [0], [1], [1.0])
        gamma = machine.alloc_nodes[:16].copy()
        assert _task_whops(5, tg_iso.symmetrized(), machine.torus, gamma) == 0.0

    def test_delta_budget_respected(self, setup16):
        """With delta=0 no swaps can be evaluated: mapping unchanged."""
        tg, machine = setup16
        start = bad_mapping(tg, machine)
        refined = WHRefiner(delta=0, max_passes=2).refine(tg, start)
        assert np.array_equal(refined.gamma, start.gamma)


class TestMCRefiner:
    @pytest.mark.parametrize("metric,field", [("volume", "mc"), ("message", "mmc")])
    def test_target_metric_never_increases(self, setup16, metric, field):
        tg, machine = setup16
        start = bad_mapping(tg, machine, seed=9)
        before = getattr(evaluate_mapping(tg, machine, start.gamma), field)
        # Message mode expects message-multiplicity weights (unit_cost view).
        work = tg if metric == "volume" else tg.unit_cost()
        refined = MCRefiner(metric=metric).refine(work, start)
        after = getattr(evaluate_mapping(tg, machine, refined.gamma), field)
        assert after <= before + 1e-9

    def test_stays_one_to_one(self, setup16):
        tg, machine = setup16
        refined = MCRefiner().refine(tg, bad_mapping(tg, machine))
        assert np.unique(refined.gamma).shape[0] == tg.num_tasks

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            MCRefiner(metric="latency")

    def test_state_swap_deltas_match_rebuild(self, setup16):
        """Sparse swap deltas must equal a from-scratch recomputation."""
        tg, machine = setup16
        gamma = bad_mapping(tg, machine, seed=4).gamma
        state = _CongestionState(tg, machine, gamma.copy(), "volume")
        rng = np.random.default_rng(6)
        for _ in range(10):
            t1, t2 = (int(x) for x in rng.choice(16, size=2, replace=False))
            links, dm, dv = state._swap_deltas(t1, t2)
            msgs_pred = state.msgs.copy()
            vols_pred = state.vols.copy()
            msgs_pred[links] += dm
            vols_pred[links] += dv
            state.commit_swap(t1, t2)  # commit rebuilds from scratch
            assert np.allclose(state.msgs, msgs_pred)
            assert np.allclose(state.vols, vols_pred)

    def test_state_tracks_mc_ac(self, setup16):
        tg, machine = setup16
        gamma = bad_mapping(tg, machine, seed=8).gamma
        state = _CongestionState(tg, machine, gamma.copy(), "volume")
        mc, ac = state.current_mc_ac()
        ref = evaluate_mapping(tg, machine, gamma)
        assert mc == pytest.approx(ref.mc)
        assert ac == pytest.approx(ref.ac)

    def test_comm_tasks_index_consistent(self, setup16):
        tg, machine = setup16
        gamma = bad_mapping(tg, machine, seed=2).gamma
        state = _CongestionState(tg, machine, gamma.copy(), "message")
        # every link with load must know at least one task
        loaded = np.flatnonzero(state.msgs > 0)
        for l in loaded.tolist():
            assert state.tasks_through(l), f"link {l} has load but no tasks"

    def test_ug_plus_umc_improves_mc_vs_ug(self, setup16):
        tg, machine = setup16
        ug = GreedyMapper().map(tg, machine)
        before = evaluate_mapping(tg, machine, ug.gamma).mc
        umc = MCRefiner(metric="volume").refine(tg, ug)
        after = evaluate_mapping(tg, machine, umc.gamma).mc
        assert after <= before + 1e-9
