"""Unit + property tests for the addressable heaps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.heap import AddressableMaxHeap, AddressableMinHeap


class TestBasics:
    def test_insert_pop_order(self):
        h = AddressableMaxHeap()
        for item, prio in [("a", 1.0), ("b", 3.0), ("c", 2.0)]:
            h.insert(item, prio)
        assert h.pop() == ("b", 3.0)
        assert h.pop() == ("c", 2.0)
        assert h.pop() == ("a", 1.0)
        assert len(h) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableMaxHeap().pop()

    def test_peek_does_not_remove(self):
        h = AddressableMaxHeap()
        h.insert(1, 5.0)
        assert h.peek() == (1, 5.0)
        assert len(h) == 1

    def test_duplicate_insert_raises(self):
        h = AddressableMaxHeap()
        h.insert("x", 1.0)
        with pytest.raises(ValueError):
            h.insert("x", 2.0)

    def test_contains_and_priority(self):
        h = AddressableMaxHeap()
        h.insert("x", 4.5)
        assert "x" in h and "y" not in h
        assert h.priority("x") == 4.5

    def test_update_absolute(self):
        h = AddressableMaxHeap()
        h.insert("a", 1.0)
        h.insert("b", 2.0)
        h.update("a", 10.0)
        assert h.pop() == ("a", 10.0)

    def test_update_inserts_when_absent(self):
        h = AddressableMaxHeap()
        h.update("new", 3.0)
        assert h.pop() == ("new", 3.0)

    def test_increase_accumulates(self):
        h = AddressableMaxHeap()
        h.increase("t", 2.0)
        h.increase("t", 3.5)
        assert h.priority("t") == pytest.approx(5.5)

    def test_remove(self):
        h = AddressableMaxHeap()
        h.insert("a", 1.0)
        h.insert("b", 2.0)
        assert h.remove("a") == 1.0
        assert "a" not in h and len(h) == 1

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableMaxHeap().remove("ghost")

    def test_tie_break_is_fifo(self):
        h = AddressableMaxHeap()
        h.insert("first", 1.0)
        h.insert("second", 1.0)
        assert h.pop()[0] == "first"

    def test_clear(self):
        h = AddressableMaxHeap()
        h.insert(1, 1.0)
        h.clear()
        assert len(h) == 0 and 1 not in h

    def test_items_snapshot(self):
        h = AddressableMaxHeap()
        h.insert("a", 1.0)
        h.insert("b", 2.0)
        assert dict(h.items()) == {"a": 1.0, "b": 2.0}

    def test_iter(self):
        h = AddressableMaxHeap()
        for i in range(5):
            h.insert(i, float(i))
        assert sorted(h) == list(range(5))


class TestMinHeap:
    def test_min_order(self):
        h = AddressableMinHeap()
        for item, prio in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            h.insert(item, prio)
        assert h.pop() == ("b", 1.0)
        assert h.peek() == ("c", 2.0)
        assert h.priority("a") == 3.0

    def test_update_and_remove(self):
        h = AddressableMinHeap()
        h.insert("x", 5.0)
        h.update("x", 0.5)
        assert h.peek() == ("x", 0.5)
        assert h.remove("x") == 0.5
        assert h.validate()


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.floats(-1e6, 1e6)), max_size=60))
def test_property_heapsort_matches_sorted(ops):
    """Inserting unique items then popping yields descending priorities."""
    h = AddressableMaxHeap()
    expect = {}
    for item, prio in ops:
        if item in expect:
            h.update(item, prio)
        else:
            h.insert(item, prio)
        expect[item] = prio
    assert h.validate()
    out = []
    while h:
        out.append(h.pop()[1])
    assert out == sorted(expect.values(), reverse=True)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "increase", "remove", "pop"]),
            st.integers(0, 12),
            st.floats(-100, 100),
        ),
        max_size=80,
    )
)
def test_property_mixed_ops_keep_invariants(ops):
    """Arbitrary op sequences keep the heap/position invariants intact."""
    h = AddressableMaxHeap()
    mirror = {}
    for op, item, prio in ops:
        if op == "insert":
            if item not in mirror:
                h.insert(item, prio)
                mirror[item] = prio
        elif op == "update":
            h.update(item, prio)
            mirror[item] = prio
        elif op == "increase":
            h.increase(item, prio)
            mirror[item] = mirror.get(item, 0.0) + prio
        elif op == "remove":
            if item in mirror:
                h.remove(item)
                del mirror[item]
        elif op == "pop":
            if mirror:
                popped, p = h.pop()
                assert p == pytest.approx(max(mirror.values()))
                del mirror[popped]
    assert h.validate()
    assert len(h) == len(mirror)
    for item, prio in mirror.items():
        assert h.priority(item) == pytest.approx(prio)
