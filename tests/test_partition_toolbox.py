"""Tests for the seven partitioner personalities."""

import numpy as np
import pytest

from repro.graph.generators import cage_like
from repro.hypergraph.model import Hypergraph
from repro.metrics.partition import evaluate_partition
from repro.partition.toolbox import PARTITIONER_NAMES, get_partitioner


@pytest.fixture(scope="module")
def workload():
    m = cage_like(600, seed=4)
    return m, Hypergraph.from_matrix(m)


class TestRegistry:
    def test_all_seven_present(self):
        assert set(PARTITIONER_NAMES) == {
            "SCOTCH",
            "KAFFPA",
            "METIS",
            "PATOH",
            "UMPAMM",
            "UMPAMV",
            "UMPATM",
        }

    def test_lookup_case_insensitive(self):
        assert get_partitioner("patoh").name == "PATOH"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_partitioner("METIS6")


class TestBehaviour:
    @pytest.mark.parametrize("name", PARTITIONER_NAMES)
    def test_valid_partition(self, workload, name):
        m, h = workload
        res = get_partitioner(name).partition(m, 8, seed=0, hypergraph=h)
        assert res.part.shape == (600,)
        assert res.part.min() >= 0 and res.part.max() < 8
        assert res.tool == name

    @pytest.mark.parametrize("name", PARTITIONER_NAMES)
    def test_deterministic(self, workload, name):
        m, h = workload
        a = get_partitioner(name).partition(m, 8, seed=3, hypergraph=h).part
        b = get_partitioner(name).partition(m, 8, seed=3, hypergraph=h).part
        assert np.array_equal(a, b)

    def test_tools_differ(self, workload):
        m, h = workload
        parts = {
            name: get_partitioner(name).partition(m, 8, seed=0, hypergraph=h).part
            for name in ("SCOTCH", "PATOH", "UMPAMM")
        }
        assert not np.array_equal(parts["SCOTCH"], parts["PATOH"])
        assert not np.array_equal(parts["PATOH"], parts["UMPAMM"])

    def test_volume_tools_beat_cut_tools_on_tv(self, workload):
        """PATOH/METIS (TV objective) should beat SCOTCH/KAFFPA on TV."""
        m, h = workload
        tvs = {}
        for name in ("SCOTCH", "KAFFPA", "METIS", "PATOH"):
            part = get_partitioner(name).partition(m, 16, seed=1, hypergraph=h).part
            tvs[name] = evaluate_partition(h, part, 16).tv
        assert min(tvs["METIS"], tvs["PATOH"]) <= min(tvs["SCOTCH"], tvs["KAFFPA"])

    def test_balance_reasonable(self, workload):
        m, h = workload
        for name in PARTITIONER_NAMES:
            part = get_partitioner(name).partition(m, 8, seed=2, hypergraph=h).part
            pm = evaluate_partition(h, part, 8)
            assert pm.imbalance < 0.12, f"{name} imbalance {pm.imbalance:.3f}"
