"""Tests for DEF, TMAP and SMAP baselines and the two-phase pipeline."""

import numpy as np
import pytest

from repro.graph.task_graph import TaskGraph
from repro.mapping.default import DefaultMapper
from repro.mapping.pipeline import (
    MAPPER_NAMES,
    TwoPhaseMapper,
    get_mapper,
    prepare_groups,
)
from repro.mapping.topomap import dual_recursive_map
from repro.metrics.mapping import evaluate_mapping
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.torus import Torus3D


@pytest.fixture()
def machine12():
    torus = Torus3D((4, 4, 2))
    return SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=12, procs_per_node=2, fragmentation=0.3, seed=1)
    )


@pytest.fixture()
def fine_tg():
    """24-rank task graph (2 ranks per node on machine12)."""
    rng = np.random.default_rng(5)
    m = 120
    src = rng.integers(0, 24, m)
    dst = rng.integers(0, 24, m)
    keep = src != dst
    return TaskGraph.from_edges(24, src[keep], dst[keep], rng.uniform(1, 4, keep.sum()))


class TestDefault:
    def test_blocks_follow_allocation_order(self, machine12):
        fine = DefaultMapper().map_ranks(24, machine12)
        expect = np.repeat(machine12.alloc_nodes, 2)
        assert np.array_equal(fine, expect)

    def test_partial_fill(self, machine12):
        fine = DefaultMapper().map_ranks(5, machine12)
        assert fine.shape == (5,)
        assert list(fine[:2]) == [machine12.alloc_nodes[0]] * 2

    def test_too_many_ranks(self, machine12):
        with pytest.raises(ValueError):
            DefaultMapper().map_ranks(100, machine12)

    def test_rank_groups(self, machine12):
        groups = DefaultMapper().rank_groups(24, machine12)
        assert groups.max() == 11
        assert np.all(np.bincount(groups) == 2)


class TestDualRecursive:
    def test_one_to_one_valid(self, machine12):
        rng = np.random.default_rng(2)
        src = rng.integers(0, 12, 40)
        dst = rng.integers(0, 12, 40)
        keep = src != dst
        coarse = TaskGraph.from_edges(12, src[keep], dst[keep], np.ones(keep.sum()))
        for split in ("geometric", "graph"):
            gamma = dual_recursive_map(coarse, machine12, seed=0, split=split)
            assert np.unique(gamma).shape[0] == 12
            assert machine12.alloc_mask()[gamma].all()

    def test_size_mismatch_rejected(self, machine12):
        coarse = TaskGraph.from_edges(5, [0], [1], [1.0])
        with pytest.raises(ValueError):
            dual_recursive_map(coarse, machine12)


class TestPipeline:
    def test_prepare_groups_exact_capacity(self, fine_tg, machine12):
        groups, coarse = prepare_groups(fine_tg, machine12, seed=0)
        counts = np.bincount(groups, minlength=12)
        assert np.array_equal(counts, machine12.capacities)
        assert coarse.num_tasks == 12

    @pytest.mark.parametrize("name", MAPPER_NAMES)
    def test_all_mappers_produce_valid_fine_gamma(self, fine_tg, machine12, name):
        res = get_mapper(name, seed=0).map(fine_tg, machine12)
        assert res.fine_gamma.shape == (24,)
        assert machine12.alloc_mask()[res.fine_gamma].all()
        used = np.bincount(res.fine_gamma, minlength=machine12.torus.num_nodes)
        assert np.all(used <= machine12.node_capacities())
        # metrics must be computable at rank granularity
        m = evaluate_mapping(fine_tg, machine12, res.fine_gamma)
        assert m.th >= 0

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            TwoPhaseMapper(algorithm="BEST")
        with pytest.raises(ValueError):
            get_mapper("nope")

    def test_shared_groups_reused(self, fine_tg, machine12):
        groups = prepare_groups(fine_tg, machine12, seed=0)
        r1 = get_mapper("UG", seed=0).map(fine_tg, machine12, groups=groups)
        r2 = get_mapper("UWH", seed=0).map(fine_tg, machine12, groups=groups)
        assert np.array_equal(r1.group_of_task, r2.group_of_task)

    def test_def_ignores_seed(self, fine_tg, machine12):
        a = get_mapper("DEF", seed=0).map(fine_tg, machine12).fine_gamma
        b = get_mapper("DEF", seed=99).map(fine_tg, machine12).fine_gamma
        assert np.array_equal(a, b)

    def test_tmap_fallback_rule(self, fine_tg, machine12):
        """TMAP returns either its own mapping (strictly better MC) or DEF's."""
        res = get_mapper("TMAP", seed=0).map(fine_tg, machine12)
        def_res = get_mapper("DEF").map(fine_tg, machine12)
        ours = evaluate_mapping(fine_tg, machine12, res.fine_gamma)
        ref = evaluate_mapping(fine_tg, machine12, def_res.fine_gamma)
        if np.array_equal(res.fine_gamma, def_res.fine_gamma):
            assert True  # fell back
        else:
            assert ours.mc < ref.mc

    def test_smap_valid(self, fine_tg, machine12):
        groups = prepare_groups(fine_tg, machine12, seed=1)
        res = get_mapper("SMAP", seed=1).map(fine_tg, machine12, groups=groups)
        assert np.unique(res.coarse_gamma).shape[0] == 12
