"""Tests for the async front end (repro.api.aio.AsyncMappingService).

Pins the contracts the serving layer depends on: awaitable results are
byte-identical to the sync path, ``max_in_flight`` really bounds plan
concurrency, ``submit`` hands out per-request futures, and the driver
threads shut down cleanly (alone and with an attached ExecutorPool).
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.api import (
    AsyncMappingService,
    ExecutorPool,
    MappingService,
    MapRequest,
)
from repro.graph.task_graph import TaskGraph
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.torus import Torus3D


@pytest.fixture()
def setup():
    torus = Torus3D((4, 4, 2))
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=8, procs_per_node=3, fragmentation=0.3, seed=4)
    )
    rng = np.random.default_rng(7)
    n, m = 24, 160
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], rng.uniform(1, 5, keep.sum()))
    return tg, machine


def _requests(tg, machine, count=4):
    return [
        MapRequest(
            task_graph=tg,
            machine=machine,
            algorithms=("UG", "UWH", "SFC"),
            seed=s,
            evaluate=True,
            tag=s,
        )
        for s in range(count)
    ]


def _assert_identical(serial, responses):
    assert len(serial) == len(responses)
    for a, b in zip(serial, responses):
        assert (a.algorithm, a.tag) == (b.algorithm, b.tag)
        np.testing.assert_array_equal(a.fine_gamma, b.fine_gamma)
        assert a.metrics.as_dict() == b.metrics.as_dict()


class TestAsyncParity:
    def test_map_batch_matches_sync(self, setup):
        tg, machine = setup
        requests = _requests(tg, machine)
        serial = MappingService().map_batch(requests)

        async def run():
            async with AsyncMappingService() as svc:
                return await svc.map_batch(requests)

        _assert_identical(serial, asyncio.run(run()))

    def test_submit_per_request_futures(self, setup):
        """Futures resolve per request; gather order is the caller's."""
        tg, machine = setup
        requests = _requests(tg, machine)
        serial = MappingService().map_batch(requests)

        async def run():
            async with AsyncMappingService(max_in_flight=2) as svc:
                tasks = [svc.submit(r) for r in requests]
                # Await in reverse to prove completion order is free.
                for task in reversed(tasks):
                    await task
                return [r for task in tasks for r in task.result()]

        _assert_identical(serial, asyncio.run(run()))

    def test_map_single_algorithm(self, setup):
        tg, machine = setup
        request = MapRequest(
            task_graph=tg, machine=machine, algorithms=("UWH",), seed=1
        )

        async def run():
            async with AsyncMappingService() as svc:
                return await svc.map(request)

        response = asyncio.run(run())
        reference = MappingService().map(request)
        assert response.algorithm == "UWH"
        np.testing.assert_array_equal(response.fine_gamma, reference.fine_gamma)

    def test_map_rejects_multi_algorithm(self, setup):
        tg, machine = setup
        request = MapRequest(
            task_graph=tg, machine=machine, algorithms=("UG", "UWH")
        )

        async def run():
            async with AsyncMappingService() as svc:
                with pytest.raises(ValueError):
                    await svc.map(request)

        asyncio.run(run())

    def test_pooled_async_parity(self, setup):
        tg, machine = setup
        requests = _requests(tg, machine)
        serial = MappingService().map_batch(requests)

        async def run():
            with ExecutorPool("thread", workers=2) as pool:
                async with AsyncMappingService(pool=pool) as svc:
                    out = await svc.map_batch(requests)
                    assert pool.spawn_count == 1
                    return out

        _assert_identical(serial, asyncio.run(run()))


class TestInFlightBound:
    def test_semaphore_bounds_concurrent_plans(self, setup):
        """max_in_flight=2: never more than two plans execute at once."""
        tg, machine = setup
        svc = AsyncMappingService(max_in_flight=2)
        lock = threading.Lock()
        running = [0]
        peak = [0]

        def slow_map_batch(requests, **kwargs):
            with lock:
                running[0] += 1
                peak[0] = max(peak[0], running[0])
            time.sleep(0.05)
            with lock:
                running[0] -= 1
            return ["ok"]

        svc.service.map_batch = slow_map_batch  # type: ignore[assignment]

        async def run():
            requests = _requests(tg, machine, count=6)
            results = await asyncio.gather(
                *[svc.map_batch(r) for r in requests]
            )
            await svc.close()
            return results

        results = asyncio.run(run())
        assert results == [["ok"]] * 6
        assert peak[0] <= 2
        assert svc.in_flight == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AsyncMappingService(max_in_flight=0)
        with pytest.raises(ValueError):
            AsyncMappingService(MappingService(), backend="thread")

    def test_closed_service_rejects_work(self, setup):
        tg, machine = setup

        async def run():
            svc = AsyncMappingService()
            await svc.close()
            with pytest.raises(RuntimeError):
                await svc.map_batch(_requests(tg, machine, count=1))

        asyncio.run(run())

    def test_plan_queued_behind_close_rejected_cleanly(self, setup):
        """close() lets the running plan finish; queued ones get a
        RuntimeError, not the driver pool's shutdown error."""
        tg, machine = setup
        svc = AsyncMappingService(max_in_flight=1)

        def slow_map_batch(requests, **kwargs):
            time.sleep(0.1)
            return ["done"]

        svc.service.map_batch = slow_map_batch  # type: ignore[assignment]

        async def run():
            requests = _requests(tg, machine, count=1)
            first = asyncio.ensure_future(svc.map_batch(requests))
            queued = asyncio.ensure_future(svc.map_batch(requests))
            await asyncio.sleep(0.02)  # let `first` occupy the slot
            await svc.close()  # waits for `first`; `queued` still pending
            assert await first == ["done"]
            with pytest.raises(RuntimeError, match="closed"):
                await queued

        asyncio.run(run())
