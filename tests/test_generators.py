"""Tests for the synthetic matrix generators (UFL stand-ins)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph.generators import GENERATORS, generate_matrix
from repro.graph.matrices import SparseMatrix

ALL_GROUPS = sorted(GENERATORS)


@pytest.mark.parametrize("group", ALL_GROUPS)
class TestAllGenerators:
    def test_square_with_diagonal(self, group):
        m = generate_matrix(group, 300, seed=1)
        assert m.num_rows == 300
        diag = m.pattern.diagonal()
        assert np.all(diag == 1), "structural diagonal must be present"

    def test_symmetric_pattern(self, group):
        m = generate_matrix(group, 300, seed=1)
        a = m.pattern
        diff = (a - a.T)
        assert abs(diff).sum() == 0

    def test_deterministic(self, group):
        a = generate_matrix(group, 200, seed=5).pattern
        b = generate_matrix(group, 200, seed=5).pattern
        assert (a != b).nnz == 0

    def test_seed_changes_pattern(self, group):
        a = generate_matrix(group, 300, seed=1).pattern
        b = generate_matrix(group, 300, seed=2).pattern
        if group in ("stencil2d", "stencil3d"):
            pytest.skip("stencils are seed-independent by construction")
        assert (a != b).nnz > 0

    def test_group_metadata(self, group):
        m = generate_matrix(group, 150, seed=0)
        assert m.group == group
        assert m.nnz >= m.num_rows  # at least the diagonal


class TestStructuralCharacter:
    def test_rgg_degree_close_to_target(self):
        m = generate_matrix("rgg", 3000, seed=0, degree=12.0)
        mean_offdiag = (m.nnz - m.num_rows) / m.num_rows
        assert 7.0 < mean_offdiag < 18.0

    def test_powerlaw_has_hubs(self):
        m = generate_matrix("powerlaw", 2000, seed=0)
        deg = m.row_nnz()
        assert deg.max() > 10 * np.median(deg)

    def test_road_is_sparse_high_diameter(self):
        m = generate_matrix("road", 2000, seed=0)
        mean_deg = m.nnz / m.num_rows
        assert mean_deg < 8
        g = m.structure_graph()
        levels = g.bfs_levels([0])
        assert levels.max() > 10  # long shortest paths

    def test_stencil2d_degree_bound(self):
        m = generate_matrix("stencil2d", 900, seed=0)
        assert m.row_nnz().max() <= 5  # 4 neighbours + diagonal

    def test_circuit_has_dense_rails(self):
        m = generate_matrix("circuit", 3000, seed=0)
        deg = m.row_nnz()
        assert deg.max() > 8 * np.median(deg)

    def test_unknown_group_raises(self):
        with pytest.raises(ValueError):
            generate_matrix("nosuch", 100)


class TestSparseMatrixContainer:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            SparseMatrix("x", "g", sp.csr_array(np.ones((2, 3))))

    def test_rejects_dense_input(self):
        with pytest.raises(TypeError):
            SparseMatrix("x", "g", np.eye(3))

    def test_row_nnz_matches_pattern(self):
        m = generate_matrix("cage", 100, seed=0)
        assert m.row_nnz().sum() == m.nnz

    def test_structure_graph_no_self_loops(self):
        m = generate_matrix("fem", 200, seed=0)
        g = m.structure_graph()
        src = np.repeat(np.arange(g.num_vertices), np.diff(g.indptr))
        assert not np.any(src == g.indices)

    def test_values_on_pattern(self):
        m = generate_matrix("cage", 100, seed=0)
        vals = m.values(seed=1)
        assert vals.nnz == m.nnz
        assert np.all(vals.data > 0)

    def test_values_deterministic(self):
        m = generate_matrix("cage", 100, seed=0)
        assert np.array_equal(m.values(seed=1).data, m.values(seed=1).data)
