"""Tests for the directed task graph abstraction."""

import numpy as np

from repro.graph.task_graph import TaskGraph, coarse_task_graph


class TestBasics:
    def test_from_edges_accumulates(self):
        tg = TaskGraph.from_edges(3, [0, 0], [1, 1], [2.0, 3.0])
        assert tg.num_messages == 1
        assert tg.total_volume() == 5.0

    def test_self_loops_removed(self):
        tg = TaskGraph.from_edges(3, [0, 1], [0, 2], [5.0, 1.0])
        assert tg.num_messages == 1
        assert tg.total_volume() == 1.0

    def test_volumes(self, ring_task_graph):
        tg = ring_task_graph
        assert np.all(tg.send_volume() == 1.0)
        assert np.all(tg.recv_volume() == 1.0)
        assert np.all(tg.send_messages() == 1)

    def test_msrv_task_picks_max_total(self):
        # task 1 sends 10 and receives 1 -> total 11, the max.
        tg = TaskGraph.from_edges(3, [1, 0], [2, 1], [10.0, 1.0])
        assert tg.msrv_task() == 1

    def test_msrv_tie_breaks_low_id(self):
        tg = TaskGraph.from_edges(4, [0, 2], [1, 3], [5.0, 5.0])
        assert tg.msrv_task() == 0

    def test_symmetrized_cached(self, random_task_graph):
        assert random_task_graph.symmetrized() is random_task_graph.symmetrized()

    def test_connectivity(self, ring_task_graph):
        assert ring_task_graph.is_connected()
        assert len(set(ring_task_graph.components().tolist())) == 1


class TestCoarse:
    def test_coarse_volumes(self):
        tg = TaskGraph.from_edges(4, [0, 1, 2], [2, 3, 0], [1.0, 2.0, 4.0])
        part = np.array([0, 0, 1, 1])
        coarse = coarse_task_graph(tg, part, 2)
        # 0->2 crosses (1.0), 1->3 crosses (2.0), 2->0 crosses back (4.0)
        assert coarse.graph.edge_weight(0, 1) == 3.0
        assert coarse.graph.edge_weight(1, 0) == 4.0

    def test_coarse_loads_sum(self):
        tg = TaskGraph.from_edges(
            4, [0], [1], [1.0], loads=np.array([1.0, 2.0, 3.0, 4.0])
        )
        coarse = coarse_task_graph(tg, np.array([0, 1, 0, 1]), 2)
        assert list(coarse.loads) == [4.0, 6.0]

    def test_intra_group_communication_disappears(self):
        tg = TaskGraph.from_edges(4, [0, 2], [1, 3], [9.0, 9.0])
        coarse = coarse_task_graph(tg, np.array([0, 0, 1, 1]), 2)
        assert coarse.num_messages == 0
        assert coarse.total_volume() == 0.0

    def test_from_comm_triplets(self):
        src = np.array([0, 0, 1])
        dst = np.array([1, 1, 0])
        vol = np.array([1.0, 1.0, 2.0])
        tg = TaskGraph.from_comm_triplets(2, (src, dst, vol))
        assert tg.graph.edge_weight(0, 1) == 2.0
        assert tg.graph.edge_weight(1, 0) == 2.0
