"""Tests for mapping / partition / node metrics with brute-force oracles."""

import numpy as np
import pytest

from repro.graph.generators import cage_like
from repro.graph.task_graph import TaskGraph, coarse_task_graph
from repro.hypergraph.model import Hypergraph
from repro.metrics.mapping import evaluate_mapping, link_congestion, total_hops, weighted_hops
from repro.metrics.nodes import evaluate_node_metrics
from repro.metrics.partition import edge_cut, evaluate_partition, imbalance
from repro.topology.machine import Machine
from repro.topology.routing import route
from repro.topology.torus import Torus3D


@pytest.fixture()
def torus():
    return Torus3D((4, 4, 2))


@pytest.fixture()
def full_machine(torus):
    return Machine(torus, list(range(torus.num_nodes)), procs_per_node=1)


class TestMappingMetrics:
    def test_single_edge_th_wh(self, torus, full_machine):
        tg = TaskGraph.from_edges(2, [0], [1], [3.0])
        gamma = np.array([0, torus.node_id(2, 1, 0)])
        m = evaluate_mapping(tg, full_machine, gamma)
        assert m.th == 3  # 2 x-hops + 1 y-hop
        assert m.wh == 9.0

    def test_colocated_tasks_zero(self, full_machine):
        tg = TaskGraph.from_edges(2, [0], [1], [3.0])
        m = evaluate_mapping(tg, full_machine, np.array([5, 5]))
        assert m.th == 0 and m.wh == 0 and m.mmc == 0 and m.used_links == 0

    def test_congestion_matches_routes(self, torus, full_machine):
        rng = np.random.default_rng(0)
        tg = TaskGraph.from_edges(
            6, rng.integers(0, 6, 20), rng.integers(0, 6, 20), rng.uniform(1, 4, 20)
        )
        gamma = rng.choice(torus.num_nodes, size=6, replace=False)
        msgs, vols = link_congestion(tg, full_machine, gamma)
        # brute force: accumulate route by route
        ref_msgs = np.zeros(torus.num_links)
        ref_vols = np.zeros(torus.num_links)
        s, d, w = tg.graph.edge_list()
        for a, b, c in zip(s, d, w):
            na, nb = int(gamma[a]), int(gamma[b])
            if na == nb:
                continue
            for lid in route(torus, na, nb):
                ref_msgs[lid] += 1
                ref_vols[lid] += c
        assert np.allclose(msgs, ref_msgs)
        assert np.allclose(vols, ref_vols)

    def test_amc_identity(self, torus, full_machine):
        """AMC == TH / |used links| (paper Sec. II)."""
        rng = np.random.default_rng(1)
        tg = TaskGraph.from_edges(
            8, rng.integers(0, 8, 30), rng.integers(0, 8, 30), rng.uniform(1, 4, 30)
        )
        gamma = rng.choice(torus.num_nodes, size=8, replace=False)
        m = evaluate_mapping(tg, full_machine, gamma)
        assert m.amc == pytest.approx(m.th / m.used_links)

    def test_mc_uses_bandwidth(self, full_machine):
        tg = TaskGraph.from_edges(2, [0], [1], [10.0])
        t = full_machine.torus
        # One hop along y (the slow dimension).
        gamma_y = np.array([t.node_id(0, 0, 0), t.node_id(0, 1, 0)])
        gamma_x = np.array([t.node_id(0, 0, 0), t.node_id(1, 0, 0)])
        mc_y = evaluate_mapping(tg, full_machine, gamma_y).mc
        mc_x = evaluate_mapping(tg, full_machine, gamma_x).mc
        assert mc_y > mc_x  # y links have lower bandwidth

    def test_invalid_gamma_rejected(self, torus):
        machine = Machine(torus, [0, 1], procs_per_node=1)
        tg = TaskGraph.from_edges(2, [0], [1], [1.0])
        with pytest.raises(ValueError):
            evaluate_mapping(tg, machine, np.array([0, 7]))  # 7 unallocated
        with pytest.raises(ValueError):
            evaluate_mapping(tg, machine, np.array([0]))  # wrong length

    def test_helpers_match_full_eval(self, torus, full_machine):
        rng = np.random.default_rng(2)
        tg = TaskGraph.from_edges(
            5, rng.integers(0, 5, 12), rng.integers(0, 5, 12), rng.uniform(1, 3, 12)
        )
        gamma = rng.choice(torus.num_nodes, size=5, replace=False)
        m = evaluate_mapping(tg, full_machine, gamma)
        assert weighted_hops(tg, full_machine, gamma) == pytest.approx(m.wh)
        assert total_hops(tg, full_machine, gamma) == pytest.approx(m.th)


class TestPartitionMetrics:
    def test_evaluate_partition_fields(self):
        m = cage_like(60, seed=0)
        h = Hypergraph.from_matrix(m)
        part = np.arange(60) % 3
        pm = evaluate_partition(h, part, 3, structure_graph=m.structure_graph())
        assert pm.tv > 0 and pm.tm > 0
        assert pm.msv <= pm.tv
        assert pm.msm <= pm.tm
        assert pm.edgecut > 0

    def test_edge_cut_counts_once(self):
        m = cage_like(30, seed=1)
        g = m.structure_graph()
        part = np.zeros(30, dtype=np.int64)
        part[15:] = 1
        cut = edge_cut(g, part)
        s, d, w = g.edge_list()
        manual = w[(part[s] != part[d])].sum() / 2
        assert cut == pytest.approx(manual)

    def test_imbalance_uniform_perfect(self):
        loads = np.ones(10)
        part = np.arange(10) % 2
        assert imbalance(loads, part, 2) == pytest.approx(0.0)

    def test_imbalance_detects_overload(self):
        loads = np.ones(10)
        part = np.zeros(10, dtype=np.int64)
        part[9] = 1
        assert imbalance(loads, part, 2) == pytest.approx(0.8)


class TestNodeMetrics:
    def test_on_coarse_graph(self):
        tg = TaskGraph.from_edges(4, [0, 1, 2], [2, 3, 1], [1.0, 2.0, 4.0])
        part = np.array([0, 0, 1, 1])
        coarse = coarse_task_graph(tg, part, 2)
        nm = evaluate_node_metrics(coarse)
        assert nm.icv == coarse.total_volume()
        assert nm.icm == coarse.num_messages
        assert nm.mnrv == max(coarse.recv_volume())

    def test_empty_coarse(self):
        tg = TaskGraph.from_edges(2, [0], [1], [1.0])
        coarse = coarse_task_graph(tg, np.array([0, 0]), 1)
        nm = evaluate_node_metrics(coarse)
        assert nm.icv == 0 and nm.icm == 0 and nm.mnrv == 0 and nm.mnrm == 0
