"""Tests for the flow simulator and the two applications."""

import numpy as np
import pytest

from repro.graph.task_graph import TaskGraph
from repro.sim.commapp import CommOnlyApp
from repro.sim.network import FlowSimulator
from repro.sim.spmv import SpMVSimulator
from repro.topology.machine import Machine
from repro.topology.torus import BASE_LATENCY_S, HOP_LATENCY_S, Torus3D


@pytest.fixture()
def torus():
    return Torus3D((4, 4, 2))


@pytest.fixture()
def machine(torus):
    return Machine(torus, list(range(torus.num_nodes)), procs_per_node=1)


class TestFlowSimulator:
    def test_single_flow_time(self, torus):
        """One flow: size/bw plus hop latency, no contention."""
        sim = FlowSimulator(torus)
        src = np.array([torus.node_id(0, 0, 0)])
        dst = np.array([torus.node_id(1, 0, 0)])  # one x-hop
        size = np.array([9.38e9])  # exactly 1 second at x bandwidth
        res = sim.simulate(src, dst, size)
        expect = 1.0 + BASE_LATENCY_S + HOP_LATENCY_S
        assert res.makespan == pytest.approx(expect, rel=1e-6)

    def test_two_flows_share_a_link(self, torus):
        """Two equal flows over the same link take ~2x one flow."""
        sim = FlowSimulator(torus)
        u = torus.node_id(0, 0, 0)
        v = torus.node_id(1, 0, 0)
        one = sim.simulate(np.array([u]), np.array([v]), np.array([1e9])).makespan
        two = sim.simulate(
            np.array([u, u]), np.array([v, v]), np.array([1e9, 1e9])
        ).makespan
        assert two == pytest.approx(2 * one, rel=0.05)

    def test_disjoint_flows_parallel(self, torus):
        """Flows on disjoint links run concurrently."""
        sim = FlowSimulator(torus)
        u1, v1 = torus.node_id(0, 0, 0), torus.node_id(1, 0, 0)
        u2, v2 = torus.node_id(2, 2, 1), torus.node_id(3, 2, 1)
        t = sim.simulate(
            np.array([u1, u2]), np.array([v1, v2]), np.array([1e9, 1e9])
        ).makespan
        solo = sim.simulate(np.array([u1]), np.array([v1]), np.array([1e9])).makespan
        assert t == pytest.approx(solo, rel=0.05)

    def test_intra_node_is_latency_only(self, torus):
        sim = FlowSimulator(torus)
        res = sim.simulate(np.array([3]), np.array([3]), np.array([1e12]))
        assert res.makespan == pytest.approx(BASE_LATENCY_S)

    def test_empty(self, torus):
        sim = FlowSimulator(torus)
        res = sim.simulate(np.array([], dtype=int), np.array([], dtype=int), np.array([]))
        assert res.makespan == 0.0

    def test_finish_times_monotone_in_size(self, torus):
        sim = FlowSimulator(torus)
        u, v = 0, torus.node_id(2, 1, 0)
        small = sim.simulate(np.array([u]), np.array([v]), np.array([1e6])).makespan
        big = sim.simulate(np.array([u]), np.array([v]), np.array([1e9])).makespan
        assert big > small

    def test_deterministic(self, torus):
        rng = np.random.default_rng(0)
        src = rng.integers(0, torus.num_nodes, 40)
        dst = rng.integers(0, torus.num_nodes, 40)
        sizes = rng.uniform(1e6, 1e8, 40)
        sim = FlowSimulator(torus)
        a = sim.simulate(src, dst, sizes).finish_times
        b = sim.simulate(src, dst, sizes).finish_times
        assert np.array_equal(a, b)

    def test_mismatched_shapes(self, torus):
        with pytest.raises(ValueError):
            FlowSimulator(torus).simulate(np.array([0]), np.array([1, 2]), np.array([1.0]))

    def test_bad_quantile(self, torus):
        with pytest.raises(ValueError):
            FlowSimulator(torus, completion_quantile=0.0)


class TestApplications:
    @pytest.fixture()
    def mapped(self, machine):
        rng = np.random.default_rng(3)
        src = rng.integers(0, 16, 50)
        dst = rng.integers(0, 16, 50)
        keep = src != dst
        tg = TaskGraph.from_edges(
            16, src[keep], dst[keep], rng.uniform(1, 4, keep.sum()),
            loads=rng.uniform(100, 200, 16),
        )
        gamma = np.arange(16, dtype=np.int64)
        return tg, gamma

    def test_commapp_scales_with_message_size(self, machine, mapped):
        tg, gamma = mapped
        t_small = CommOnlyApp(scale=4096.0).execution_time(tg, machine, gamma)
        t_big = CommOnlyApp(scale=262144.0).execution_time(tg, machine, gamma)
        assert t_big > t_small

    def test_commapp_repetitions_and_noise(self, machine, mapped):
        tg, gamma = mapped
        times = CommOnlyApp(scale=4096.0, noise=0.05).run(
            tg, machine, gamma, repetitions=5, seed=1
        )
        assert times.shape == (5,)
        assert np.std(times) > 0
        again = CommOnlyApp(scale=4096.0, noise=0.05).run(
            tg, machine, gamma, repetitions=5, seed=1
        )
        assert np.array_equal(times, again)

    def test_spmv_scales_with_iterations(self, machine, mapped):
        tg, gamma = mapped
        t500 = SpMVSimulator(iterations=500).execution_time(tg, machine, gamma)
        t1000 = SpMVSimulator(iterations=1000).execution_time(tg, machine, gamma)
        assert t1000 == pytest.approx(2 * t500, rel=1e-9)

    def test_spmv_compute_floor(self, machine):
        """With no communication, time = compute of the heaviest rank."""
        tg = TaskGraph.from_edges(4, [], [], [], loads=np.array([1e6, 1.0, 1.0, 1.0]))
        gamma = np.arange(4, dtype=np.int64)
        t = SpMVSimulator(iterations=1).iteration_time(tg, machine, gamma)
        assert t >= 1e6 * 1.1e-9

    def test_locality_pays_for_ring_pattern(self, machine):
        """A ring placed on adjacent nodes must beat a max-spread layout.

        (For locality-free random patterns, spreading can legitimately win
        by buying aggregate bandwidth — so the check uses a ring, whose
        compact placement has both fewer hops *and* no contention.)
        """
        torus = machine.torus
        n = 8
        src = list(range(n))
        dst = [(i + 1) % n for i in range(n)]
        tg = TaskGraph.from_edges(n, src, dst, [4.0] * n)
        # Adjacent placement along an x-row (+ wrap): all 1-hop edges.
        compact_gamma = np.array(
            [torus.node_id(i % 4, i // 4, 0) for i in range(n)]
        )
        # Max-spread: opposite corners alternating -> every edge is far.
        far = [
            torus.node_id(0, 0, 0), torus.node_id(2, 2, 1),
            torus.node_id(1, 3, 0), torus.node_id(3, 1, 1),
            torus.node_id(2, 0, 1), torus.node_id(0, 2, 0),
            torus.node_id(3, 3, 1), torus.node_id(1, 1, 0),
        ]
        spread_gamma = np.array(far)
        app = CommOnlyApp(scale=262144.0)
        t_compact = app.execution_time(tg, machine, compact_gamma)
        t_spread = app.execution_time(tg, machine, spread_gamma)
        assert t_spread > t_compact
