"""Chaos under the network front end: worker kills mid-request.

Wires the deterministic :class:`~repro.api.fault.FaultInjector` token
harness *under a live TCP server*: a process-pool worker is killed
while serving a coalesced batch, and the failure must surface as a
structured ``crash`` error to exactly the client whose request was
poisoned — co-batched clients get their (byte-identical) results, the
pool self-heals, and the server keeps serving.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import pytest

from repro.api import (
    ExecutorPool,
    FaultInjector,
    MappingService,
    RetryPolicy,
)
from repro.serve import (
    ServeClient,
    ThreadedServer,
    canonical_result,
    requests_from_entries,
    response_payload,
)

#: Same small workload the serve tests map; tags differ per client so
#: the injector can poison exactly one request of the coalesced batch.
ENTRY = {
    "matrix": "cage12_like",
    "algos": "UG",
    "procs": 16,
    "ppn": 2,
    "rows_per_unit": 40,
    "seed": 0,
}


@pytest.fixture
def injector(tmp_path):
    inj = FaultInjector(str(tmp_path / "faults"))
    with inj:
        yield inj
    inj.disarm()


def _reference(tag):
    reqs = requests_from_entries([{**ENTRY, "tag": tag}], {}, OrderedDict())
    return [
        canonical_result(response_payload(r))
        for r in MappingService().map_batch(reqs)
    ]


def _serve_two(ts, tags):
    """Barrier-start one client per tag; returns replies keyed by tag."""
    replies = {}
    lock = threading.Lock()
    barrier = threading.Barrier(len(tags))

    def worker(tag):
        with ServeClient(*ts.address, tenant=tag, timeout=300.0) as client:
            barrier.wait(timeout=60)
            r = client.map([{**ENTRY, "tag": tag}])
            with lock:
                replies[tag] = r

    threads = [threading.Thread(target=worker, args=(t,)) for t in tags]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return replies


class TestServerChaos:
    def test_poison_request_crashes_only_its_own_client(self, injector):
        """Worker killed repeatedly mid-request: the poisoned client gets
        a structured ``crash`` error, its co-batched neighbour completes
        byte-identically, and the server stays up."""
        injector.arm("kill-worker", "p0", count=5)
        with ExecutorPool("process", workers=2) as pool:
            with ThreadedServer(
                pool=pool,
                retry=RetryPolicy(max_crashes=2),
                coalesce_window=0.5,
                max_in_flight=1,
            ) as ts:
                replies = _serve_two(ts, ["p0", "ok"])
                with ServeClient(*ts.address, timeout=300.0) as client:
                    stats = client.stats()
                    # The server keeps serving after the chaos.
                    assert client.ping()
                    after = client.map([{**ENTRY, "tag": "again"}])

        # Both requests rode one coalesced dispatch...
        assert replies["p0"]["dispatch"] == replies["ok"]["dispatch"]
        # ...and only the poisoned one failed, with the engine's
        # structured crash error forwarded over the wire.
        poisoned = replies["p0"]["results"][0]
        assert replies["p0"]["ok"] is True  # transport ok, result failed
        assert poisoned["ok"] is False
        assert poisoned["error"]["kind"] == "crash"
        assert poisoned["error"]["attempts"] >= 2
        clean = [canonical_result(r) for r in replies["ok"]["results"]]
        assert all(r["ok"] for r in replies["ok"]["results"])
        assert clean == _reference("ok")
        assert after["ok"] and all(r["ok"] for r in after["results"])

        # The pool self-healed (respawns counted) and reports healthy.
        assert stats["pool"]["restarts"] >= 1
        assert stats["pool"]["healthy"] is True
        assert stats["counters"]["result_errors"] == 1
        # Quarantine, not infinite resubmission: tokens stay armed.
        assert injector.pending("kill-worker") > 0

    def test_transient_kill_heals_invisibly(self, injector):
        """A single worker kill is retried to success: no client ever
        sees it, results stay byte-identical, the pool respawns once."""
        injector.arm("kill-worker", "t0")
        with ExecutorPool("process", workers=2) as pool:
            with ThreadedServer(
                pool=pool,
                retry=RetryPolicy(max_crashes=2),
                coalesce_window=0.5,
                max_in_flight=1,
            ) as ts:
                replies = _serve_two(ts, ["t0", "ok"])
                with ServeClient(*ts.address, timeout=300.0) as client:
                    stats = client.stats()

        for tag in ("t0", "ok"):
            assert replies[tag]["ok"] is True
            assert all(r["ok"] for r in replies[tag]["results"])
            got = [canonical_result(r) for r in replies[tag]["results"]]
            assert got == _reference(tag)
        assert stats["pool"]["restarts"] == 1
        assert stats["pool"]["healthy"] is True
        assert stats["counters"]["result_errors"] == 0
