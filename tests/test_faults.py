"""Chaos tests: fault injection, self-healing pools, degraded machines.

Pins the fault-tolerance contracts of the serving stack:

* the engine returns **partial batch results** (structured
  :class:`~repro.api.fault.PlanError` outcomes) instead of aborting,
  while unaffected requests stay byte-identical to the serial reference;
* transient node failures are retried with exponential backoff and heal
  without changing results;
* an :class:`~repro.api.pool.ExecutorPool` whose worker is killed
  mid-batch **self-heals**: the executor respawns, only the lost nodes
  re-run, and a request that keeps killing workers is quarantined
  (failed cleanly or re-run serially) rather than re-submitted forever;
* degraded machines (dead links / dead nodes) are first-class: routes
  detour around the failure mask, impossible pairs raise, and fault
  masks are fingerprinted into cache keys so degraded and healthy runs
  never share artifacts;
* the :class:`~repro.api.store.DiskArtifactStore` shrugs off corrupted
  artifacts (recompute, never wrong data) and sweeps orphaned temp
  files on open.

All faults are driven by the deterministic
:class:`~repro.api.fault.FaultInjector` token harness — each armed
fault fires exactly once, however many workers race for it.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np
import pytest

from repro.api import (
    AsyncMappingService,
    DiskArtifactStore,
    ExecutorPool,
    FaultInjector,
    MappingService,
    MapRequest,
    RetryPolicy,
    register_mapper,
    unregister_mapper,
)
from repro.api.fault import NO_RETRY, InjectedFault, PlanError
from repro.api.stages import PLACEMENT_STAGES
from repro.graph.task_graph import TaskGraph
from repro.topology import routing
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.routing import DeadEndpointError, UnroutableError
from repro.topology.torus import Torus3D


@pytest.fixture(scope="module")
def workload():
    """24-rank task graph on 8 nodes × 3 processors (4x4x2 torus)."""
    torus = Torus3D((4, 4, 2))
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=8, procs_per_node=3, fragmentation=0.3, seed=4)
    )
    rng = np.random.default_rng(7)
    n, m = 24, 160
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], rng.uniform(1, 5, keep.sum()))
    return tg, machine


def _request(tg, machine, tag, algos=("UG",), seed=3):
    return MapRequest(
        task_graph=tg, machine=machine, algorithms=algos, seed=seed, tag=tag
    )


def _assert_same_mapping(a, b):
    np.testing.assert_array_equal(a.fine_gamma, b.fine_gamma)
    np.testing.assert_array_equal(a.coarse_gamma, b.coarse_gamma)


@pytest.fixture()
def injector(tmp_path):
    inj = FaultInjector(str(tmp_path / "faults"))
    with inj:
        yield inj
    inj.disarm()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_crashes=0)
        with pytest.raises(ValueError):
            RetryPolicy(poison="retry-forever")

    def test_exponential_backoff_is_capped(self):
        policy = RetryPolicy(backoff=0.1, backoff_factor=2.0, max_backoff=0.3)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(5) == pytest.approx(0.3)  # capped

    def test_no_retry_default(self):
        assert NO_RETRY.max_attempts == 1

    def test_injector_rejects_unknown_kind(self, tmp_path):
        inj = FaultInjector(str(tmp_path))
        with pytest.raises(ValueError):
            inj.arm("meteor-strike", "r0")


class TestPartialResults:
    """on_error="partial": failures become structured outcomes."""

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_one_failure_spares_the_rest(self, workload, injector, backend):
        tg, machine = workload
        reqs = [_request(tg, machine, f"r{i}") for i in range(3)]
        baseline = MappingService().map_batch(
            [_request(tg, machine, f"r{i}") for i in range(3)]
        )
        injector.arm("raise", "r1")
        out = MappingService().map_batch(
            reqs, backend=backend, workers=2, on_error="partial"
        )
        assert [r.ok for r in out] == [True, False, True]
        err = out[1].error
        assert isinstance(err, PlanError)
        assert err.kind == "error"
        assert err.exception == "InjectedFault"
        assert err.tag == "r1"
        assert "InjectedFault" in str(err)
        assert err.as_dict()["kind"] == "error"
        # The failed response guards its mapping accessors.
        with pytest.raises(RuntimeError):
            out[1].fine_gamma
        # Unaffected requests are byte-identical to the healthy run.
        _assert_same_mapping(out[0], baseline[0])
        _assert_same_mapping(out[2], baseline[2])

    def test_grouping_failure_cascades_upstream(self, workload, injector):
        tg, machine = workload
        reqs = [_request(tg, machine, f"r{i}") for i in range(3)]
        # All three requests share one grouping node, tagged with the
        # first request that needs it; its failure fails every consumer.
        injector.arm("raise", "r0", node="grouping")
        out = MappingService().map_batch(reqs, on_error="partial")
        assert all(not r.ok for r in out)
        assert all(r.error.kind == "upstream" for r in out)

    def test_default_raise_mode_aborts_like_before(self, workload, injector):
        tg, machine = workload
        injector.arm("raise", "r0")
        with pytest.raises(InjectedFault):
            MappingService().map_batch([_request(tg, machine, "r0")])

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_retry_heals_transient_fault(self, workload, injector, backend):
        tg, machine = workload
        reqs = [_request(tg, machine, f"r{i}") for i in range(3)]
        baseline = MappingService().map_batch(
            [_request(tg, machine, f"r{i}") for i in range(3)]
        )
        injector.arm("raise", "r1")
        out = MappingService().map_batch(
            reqs,
            backend=backend,
            workers=2,
            retry=RetryPolicy(max_attempts=3, backoff=0.01),
        )
        assert all(r.ok for r in out)
        for a, b in zip(baseline, out):
            _assert_same_mapping(a, b)

    def test_retry_exhaustion_reports_attempts(self, workload, injector):
        tg, machine = workload
        injector.arm("raise", "r0", count=3)
        out = MappingService().map_batch(
            [_request(tg, machine, "r0")],
            retry=RetryPolicy(max_attempts=3, backoff=0.01),
            on_error="partial",
        )
        assert not out[0].ok
        assert out[0].error.attempts == 3

    def test_healthy_results_identical_with_machinery_enabled(self, workload):
        """Retry/timeout/partial arming must not change healthy results."""
        tg, machine = workload
        reqs = lambda: [  # noqa: E731
            _request(tg, machine, f"r{i}", algos=("DEF", "UG", "UWH"))
            for i in range(2)
        ]
        baseline = MappingService().map_batch(reqs())
        for backend in ("serial", "thread"):
            out = MappingService().map_batch(
                reqs(),
                backend=backend,
                workers=2,
                retry=RetryPolicy(max_attempts=3, backoff=0.01),
                node_timeout=120.0,
                on_error="partial",
            )
            assert all(r.ok for r in out)
            for a, b in zip(baseline, out):
                assert a.algorithm == b.algorithm
                _assert_same_mapping(a, b)

    def test_on_error_validated(self, workload):
        tg, machine = workload
        with pytest.raises(ValueError):
            MappingService().map_batch(
                [_request(tg, machine, "r0")], on_error="ignore"
            )


class TestNodeTimeout:
    def test_slow_node_times_out_others_succeed(self, workload):
        tg, machine = workload

        @register_mapper("SLEEPY", description="sleeps, then places greedily")
        def sleepy(ctx):
            time.sleep(3.0)
            return PLACEMENT_STAGES["greedy"](ctx)  # pragma: no cover

        try:
            out = MappingService().map_batch(
                [
                    _request(tg, machine, "slow", algos=("SLEEPY",)),
                    _request(tg, machine, "fast", algos=("UG",)),
                ],
                backend="thread",
                workers=2,
                node_timeout=0.3,
                on_error="partial",
            )
        finally:
            unregister_mapper("SLEEPY")
        slow = next(r for r in out if r.tag == "slow")
        fast = next(r for r in out if r.tag == "fast")
        assert not slow.ok and slow.error.kind == "timeout"
        assert "deadline" in slow.error.message
        assert fast.ok

    def test_timeout_raises_without_partial(self, workload):
        tg, machine = workload

        @register_mapper("SLEEPY2", description="sleeps, then places greedily")
        def sleepy(ctx):
            time.sleep(3.0)
            return PLACEMENT_STAGES["greedy"](ctx)  # pragma: no cover

        try:
            with pytest.raises(TimeoutError):
                MappingService().map_batch(
                    [_request(tg, machine, "slow", algos=("SLEEPY2",))],
                    backend="thread",
                    node_timeout=0.3,
                )
        finally:
            unregister_mapper("SLEEPY2")


class TestPoolSelfHealing:
    def test_worker_kill_respawns_and_recovers(self, workload, injector):
        tg, machine = workload
        reqs = [_request(tg, machine, f"r{i}") for i in range(4)]
        baseline = MappingService().map_batch(
            [_request(tg, machine, f"r{i}") for i in range(4)]
        )
        injector.arm("kill-worker", "r2")
        with ExecutorPool("process", workers=2) as pool:
            service = MappingService(pool=pool)
            out = service.map_batch(reqs, on_error="partial")
            # One kill: the node is a first-time crash suspect, so it is
            # re-submitted to the respawned pool and succeeds (the
            # injection token was claimed by the dead worker).
            assert all(r.ok for r in out)
            for a, b in zip(baseline, out):
                _assert_same_mapping(a, b)
            assert pool.restarts == 1
            assert pool.healthy
            stats = pool.stats()
            assert stats["restarts"] == 1
            assert stats["healthy"] is True
            # The pool keeps serving.
            nxt = service.map_batch([_request(tg, machine, "next")])
            assert nxt[0].ok

    def test_poison_request_quarantined_cleanly(self, workload, injector):
        tg, machine = workload
        injector.arm("kill-worker", "p0", count=5)
        with ExecutorPool("process", workers=2) as pool:
            service = MappingService(pool=pool)
            out = service.map_batch(
                [_request(tg, machine, "p0"), _request(tg, machine, "p1")],
                on_error="partial",
                retry=RetryPolicy(max_crashes=2),
            )
            by_tag = {r.tag: r for r in out}
            assert not by_tag["p0"].ok
            assert by_tag["p0"].error.kind == "crash"
            assert by_tag["p1"].ok
            assert pool.healthy
            # Quarantine means never re-submitted: tokens remain armed.
            assert injector.pending("kill-worker") > 0
            nxt = service.map_batch([_request(tg, machine, "p1")])
            assert nxt[0].ok

    def test_poison_serial_fallback_recovers(self, workload, injector):
        tg, machine = workload
        baseline = MappingService().map_batch(
            [_request(tg, machine, "p0"), _request(tg, machine, "p1")]
        )
        # Exactly max_crashes kills: quarantine re-runs p0 in-process,
        # where no token is left to fire.
        injector.arm("kill-worker", "p0", count=2)
        with ExecutorPool("process", workers=2) as pool:
            service = MappingService(pool=pool)
            out = service.map_batch(
                [_request(tg, machine, "p0"), _request(tg, machine, "p1")],
                on_error="partial",
                retry=RetryPolicy(max_crashes=2, poison="serial"),
            )
            assert all(r.ok for r in out)
            for a, b in zip(baseline, out):
                _assert_same_mapping(a, b)
            assert pool.restarts == 2

    def test_healthy_goes_false_on_broken_executor(self):
        with ExecutorPool("process", workers=2) as pool:
            assert pool.healthy
            future = pool.submit(os._exit, 87)
            with pytest.raises(Exception):
                future.result()
            # executor_alive answers "is one spawned", healthy answers
            # "can it take work" — a crashed pool is alive but sick.
            assert pool.executor_alive
            assert not pool.healthy
            pool.respawn()
            assert pool.healthy
            assert pool.restarts == 1

    def test_raise_mode_crash_aborts_but_pool_heals(self, workload, injector):
        tg, machine = workload
        injector.arm("kill-worker", "k0")
        with ExecutorPool("process", workers=2) as pool:
            service = MappingService(pool=pool)
            # Legacy raise mode: with max_crashes=1 the first kill
            # quarantine-fails the node and aborts the batch — but the
            # pool respawns underneath and stays serviceable.
            with pytest.raises(Exception):
                service.map_batch(
                    [_request(tg, machine, "k0")],
                    retry=RetryPolicy(max_crashes=1),
                )
            assert pool.healthy
            assert pool.restarts == 1
            nxt = service.map_batch([_request(tg, machine, "next")])
            assert nxt[0].ok


class TestChaosAcceptance:
    """The ISSUE's acceptance scenario, end to end."""

    def test_kill_plus_dead_link_partial_batch(self, workload, injector):
        tg, machine = workload
        # One link on some allocated node's route is masked dead.
        degraded = machine.degrade(dead_links=[int(machine.alloc_nodes[0]) * 6])
        reqs = [
            _request(tg, machine, "r0"),
            _request(tg, degraded, "r1-degraded"),
            _request(tg, machine, "r2"),
            _request(tg, machine, "r3"),
        ]
        # Serial reference on identical inputs (healthy + degraded).
        baseline = MappingService().map_batch(
            [
                _request(tg, machine, "r0"),
                _request(tg, degraded, "r1-degraded"),
                _request(tg, machine, "r2"),
                _request(tg, machine, "r3"),
            ]
        )
        # r3 segfaults its worker until quarantined.
        injector.arm("kill-worker", "r3", count=4)
        with ExecutorPool("process", workers=2) as pool:
            service = MappingService(pool=pool)
            out = service.map_batch(
                reqs, on_error="partial", retry=RetryPolicy(max_crashes=2)
            )
            by_tag = {r.tag: r for r in out}
            # N-1 byte-identical successes + 1 structured error.
            assert sum(1 for r in out if r.ok) == len(reqs) - 1
            assert by_tag["r3"].error.kind == "crash"
            for ref in baseline:
                if ref.tag == "r3":
                    continue
                _assert_same_mapping(ref, by_tag[ref.tag])
            # The pool is healthy for the next batch.
            assert pool.healthy
            nxt = service.map_batch([_request(tg, machine, "again")])
            assert nxt[0].ok


class TestCorruptArtifacts:
    def test_corrupted_store_recomputes_identically(self, workload, tmp_path):
        tg, machine = workload
        store_dir = str(tmp_path / "store")
        reqs = lambda: [  # noqa: E731
            _request(tg, machine, f"r{i}", algos=("DEF", "UG")) for i in range(2)
        ]
        from repro.api.cache import ArtifactCache

        first = MappingService(
            cache=ArtifactCache(store=DiskArtifactStore(store_dir))
        ).map_batch(reqs())
        store = DiskArtifactStore(store_dir)
        corrupted = FaultInjector.corrupt_artifact(store)
        assert corrupted > 0
        again = MappingService(
            cache=ArtifactCache(store=DiskArtifactStore(store_dir))
        ).map_batch(reqs())
        assert all(r.ok for r in again)
        for a, b in zip(first, again):
            _assert_same_mapping(a, b)


class TestStoreSweep:
    def test_orphaned_tmp_swept_on_open(self, tmp_path):
        root = tmp_path / "store"
        store = DiskArtifactStore(str(root))
        store.save("grouping", ("k",), np.arange(4))
        ns_dir = root / "grouping"
        orphan = ns_dir / "deadbeef.npz.tmp"
        orphan.write_bytes(b"partial write")
        old = time.time() - 3600
        os.utime(orphan, (old, old))
        DiskArtifactStore(str(root))  # re-open sweeps
        assert not orphan.exists()
        # The real artifact survived.
        assert store.load("grouping", ("k",)) is not None

    def test_fresh_tmp_spared(self, tmp_path):
        """A live writer's temp file (recent mtime) must not be yanked."""
        root = tmp_path / "store"
        DiskArtifactStore(str(root))
        fresh = root / "live.npz.tmp"
        fresh.write_bytes(b"mid-write")
        DiskArtifactStore(str(root))
        assert fresh.exists()
        assert DiskArtifactStore(str(root)).sweep_orphans(min_age_s=0.0) == 1
        assert not fresh.exists()


class TestDegradedMachines:
    def test_routes_detour_around_dead_link(self):
        torus = Torus3D((4, 4, 4))
        healthy = routing.route(torus, 0, 3)
        dead = healthy[0]
        faulty = torus.with_failures(dead_links=[dead])
        detour = routing.route(faulty, 0, 3)
        assert dead not in detour
        assert len(detour) >= len(healthy)
        # The detour is a contiguous path 0 -> 3 over live links.
        alive = faulty.link_alive()
        at = 0
        for link in detour:
            assert alive[link]
            u, v = faulty.link_endpoints(np.asarray([link]))
            assert int(u[0]) == at
            at = int(v[0])
        assert at == 3

    def test_unaffected_routes_stay_byte_identical(self):
        torus = Torus3D((4, 4, 4))
        rng = np.random.default_rng(0)
        src = rng.integers(0, 64, 200).astype(np.int64)
        dst = rng.integers(0, 64, 200).astype(np.int64)
        links0, msg0 = routing.routes_bulk(torus, src, dst)
        dead = int(links0[0])
        faulty = torus.with_failures(dead_links=[dead])
        links1, msg1 = routing.routes_bulk(faulty, src, dst)
        affected = set(msg0[links0 == dead].tolist())
        table0 = routing.RouteTable.from_bulk(
            src.shape[0], links0, msg0, torus.num_links
        )
        table1 = routing.RouteTable.from_bulk(
            src.shape[0], links1, msg1, faulty.num_links
        )
        for m in range(src.shape[0]):
            a = table0.links[table0.ptr[m] : table0.ptr[m + 1]]
            b = table1.links[table1.ptr[m] : table1.ptr[m + 1]]
            if m in affected:
                assert dead not in b.tolist()
            else:
                np.testing.assert_array_equal(a, b)

    def test_dead_endpoint_raises(self):
        torus = Torus3D((4, 4, 2)).with_failures(dead_nodes=[5])
        with pytest.raises(DeadEndpointError):
            routing.routes_bulk(
                torus,
                np.asarray([0], dtype=np.int64),
                np.asarray([5], dtype=np.int64),
            )

    def test_disconnected_pair_unroutable(self):
        # 1-D ring of 4: killing both directed links of both neighbours
        # of node 0 disconnects it in X on a (4,1,1) torus.
        torus = Torus3D((4, 1, 1))
        dead = []
        for node in (0, 1, 3):
            for direction in (0, 1):
                dead.append(node * 6 + 0 * 2 + direction)
        faulty = torus.with_failures(dead_links=dead)
        with pytest.raises(UnroutableError):
            routing.routes_bulk(
                faulty,
                np.asarray([0], dtype=np.int64),
                np.asarray([2], dtype=np.int64),
            )

    def test_degrade_drops_dead_nodes_from_allocation(self, workload):
        _, machine = workload
        victim = int(machine.alloc_nodes[0])
        degraded = machine.degrade(dead_nodes=[victim])
        assert victim not in degraded.alloc_nodes
        assert degraded.has_faults
        assert degraded.num_alloc_nodes == machine.num_alloc_nodes - 1

    def test_degrade_rejects_total_loss(self, workload):
        _, machine = workload
        with pytest.raises(ValueError):
            machine.degrade(dead_nodes=list(machine.alloc_nodes))

    def test_fault_masks_change_cache_keys(self, workload):
        from repro.api.cache import machine_key

        _, machine = workload
        degraded = machine.degrade(
            dead_links=[int(machine.alloc_nodes[0]) * 6]
        )
        assert machine_key(machine) != machine_key(degraded)
        src = machine.alloc_nodes[:4].astype(np.int64)
        dst = machine.alloc_nodes[4:8].astype(np.int64)
        assert routing.route_table_key(
            machine.torus, src, dst
        ) != routing.route_table_key(degraded.torus, src, dst)

    def test_mapping_on_degraded_machine_succeeds(self, workload):
        tg, machine = workload
        degraded = machine.degrade(dead_links=[int(machine.alloc_nodes[0]) * 6])
        out = MappingService().map_batch(
            [
                MapRequest(
                    task_graph=tg,
                    machine=degraded,
                    algorithms=("UG", "UWH"),
                    seed=3,
                    evaluate=True,
                )
            ]
        )
        assert all(r.ok for r in out)
        assert all(r.metrics is not None for r in out)

    def test_allocation_on_dead_node_rejected(self, workload):
        from repro.topology.machine import Machine

        _, machine = workload
        victim = int(machine.alloc_nodes[0])
        faulty_torus = machine.torus.with_failures(dead_nodes=[victim])
        with pytest.raises(ValueError):
            Machine(faulty_torus, machine.alloc_nodes, machine.capacities)


class TestAioCancellation:
    def test_cancel_releases_slot_pool_stays_serviceable(self, workload):
        tg, machine = workload

        async def run():
            async with AsyncMappingService(max_in_flight=1) as svc:
                task = svc.submit(_request(tg, machine, "victim"))
                await asyncio.sleep(0)  # let it reach the semaphore
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                # The slot must be free again: this await would hang
                # forever (max_in_flight=1) if cancellation leaked it.
                out = await asyncio.wait_for(
                    svc.map_batch(_request(tg, machine, "after")), timeout=60
                )
                assert out[0].ok
                assert svc.in_flight == 0

        asyncio.run(run())

    def test_timeout_releases_slot(self, workload):
        tg, machine = workload

        @register_mapper("SLEEPY3", description="sleeps, then places greedily")
        def sleepy(ctx):
            time.sleep(2.0)
            return PLACEMENT_STAGES["greedy"](ctx)

        try:

            async def run():
                async with AsyncMappingService(max_in_flight=1) as svc:
                    with pytest.raises(asyncio.TimeoutError):
                        await svc.map(
                            _request(tg, machine, "slow", algos=("SLEEPY3",)),
                            timeout=0.2,
                        )
                    out = await asyncio.wait_for(
                        svc.map_batch(_request(tg, machine, "after")), timeout=60
                    )
                    assert out[0].ok

            asyncio.run(run())
        finally:
            unregister_mapper("SLEEPY3")

    def test_fault_kwargs_flow_through_async(self, workload, injector):
        tg, machine = workload
        injector.arm("raise", "a0")

        async def run():
            async with AsyncMappingService() as svc:
                out = await svc.map_batch(
                    [
                        _request(tg, machine, "a0"),
                        _request(tg, machine, "a1"),
                    ],
                    on_error="partial",
                )
                by_tag = {r.tag: r for r in out}
                assert not by_tag["a0"].ok
                assert by_tag["a0"].error.kind == "error"
                assert by_tag["a1"].ok

        asyncio.run(run())
