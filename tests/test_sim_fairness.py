"""Bandwidth-sharing semantics of the flow simulator.

The simulator implements a one-step waterfill per round:
``rate_f = min over links of bw/n``.  These tests pin down exactly what
that approximation guarantees (per-link fair shares, isolation of
disjoint flows, bottleneck domination) and what it deliberately does not
(slack redistribution, which exact max-min would perform).
"""

import numpy as np
import pytest

from repro.sim.network import FlowSimulator
from repro.topology.torus import BASE_LATENCY_S, Torus3D


@pytest.fixture()
def torus():
    return Torus3D((6, 4, 2))


def makespan(torus, flows):
    src = np.array([f[0] for f in flows])
    dst = np.array([f[1] for f in flows])
    size = np.array([float(f[2]) for f in flows], dtype=np.float64)
    return FlowSimulator(torus).simulate(src, dst, size)


class TestFairness:
    def test_disjoint_flow_unaffected_by_contention(self, torus):
        """A flow on its own links runs at full speed regardless of others."""
        a, b = torus.node_id(0, 0, 0), torus.node_id(1, 0, 0)
        c, d = torus.node_id(3, 2, 1), torus.node_id(4, 2, 1)
        solo = makespan(torus, [(c, d, 1e9)]).finish_times[0]
        crowd = makespan(
            torus,
            [(a, b, 1e9), (a, b, 1e9), (a, b, 1e9), (c, d, 1e9)],
        ).finish_times[3]
        assert crowd == pytest.approx(solo, rel=0.05)

    def test_three_way_share(self, torus):
        """Three equal flows on one link finish in ~3x the solo time."""
        a, b = torus.node_id(0, 0, 0), torus.node_id(1, 0, 0)
        solo = makespan(torus, [(a, b, 1e9)]).makespan
        three = makespan(torus, [(a, b, 1e9)] * 3).makespan
        assert three == pytest.approx(3 * solo, rel=0.06)

    def test_bottleneck_dominates_route(self, torus):
        """A two-hop flow is limited by its more congested hop."""
        a = torus.node_id(0, 0, 0)
        b = torus.node_id(1, 0, 0)
        c = torus.node_id(2, 0, 0)
        # Long flow a->c (links a-b, b-c); competitor on a-b only.
        res = makespan(torus, [(a, c, 1e9), (a, b, 1e9)])
        # The long flow shares a-b: its rate is ~bw/2, so it takes ~2x.
        solo = makespan(torus, [(a, c, 1e9)]).makespan
        assert res.finish_times[0] >= solo * 1.6

    def test_short_flows_release_capacity(self, torus):
        """After a short flow finishes, the long one speeds back up."""
        a, b = torus.node_id(0, 0, 0), torus.node_id(1, 0, 0)
        long_solo = makespan(torus, [(a, b, 2e9)]).makespan
        mixed = makespan(torus, [(a, b, 2e9), (a, b, 2e8)])
        # The long flow pays for sharing only while the short one lives:
        # total < serialized sum, > its solo time.
        assert long_solo < mixed.makespan < long_solo + 2 * (2e8 / 9.38e9) + 1e-3

    def test_makespan_monotone_in_flow_count(self, torus):
        a, b = torus.node_id(0, 0, 0), torus.node_id(1, 0, 0)
        times = [makespan(torus, [(a, b, 1e9)] * k).makespan for k in (1, 2, 4)]
        assert times[0] < times[1] < times[2]

    def test_zero_size_flow_is_latency_only(self, torus):
        a, b = torus.node_id(0, 0, 0), torus.node_id(1, 0, 0)
        res = makespan(torus, [(a, b, 0.0)])
        assert res.finish_times[0] == pytest.approx(
            BASE_LATENCY_S + 0.13e-6, rel=0.2
        )
