"""Property-based tests on the mapping invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.task_graph import TaskGraph
from repro.mapping.base import wh_of
from repro.mapping.greedy import greedy_map
from repro.mapping.refine_mc import MCRefiner
from repro.mapping.refine_wh import WHRefiner
from repro.mapping.base import Mapping
from repro.metrics.mapping import evaluate_mapping
from repro.topology.machine import Machine
from repro.topology.torus import Torus3D


def build_machine(n_nodes: int, seed: int) -> Machine:
    torus = Torus3D((4, 4, 3))
    rng = np.random.default_rng(seed)
    nodes = rng.choice(torus.num_nodes, size=n_nodes, replace=False)
    return Machine(torus, nodes.tolist(), procs_per_node=1)


def build_tg(n: int, seed: int) -> TaskGraph:
    rng = np.random.default_rng(seed)
    m = 4 * n
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    if not keep.any():
        return TaskGraph.from_edges(n, [], [], [])
    return TaskGraph.from_edges(
        n, src[keep], dst[keep], rng.uniform(0.5, 5.0, keep.sum())
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 12), st.integers(0, 10_000))
def test_property_greedy_is_injective_and_allocated(n, seed):
    """Greedy mapping is one-to-one onto allocated nodes, any workload."""
    machine = build_machine(n, seed % 97)
    tg = build_tg(n, seed)
    for nbfs in (0, 1, 2):
        gamma = greedy_map(tg, machine, nbfs=nbfs)
        assert np.unique(gamma).shape[0] == n
        assert machine.alloc_mask()[gamma].all()


@settings(max_examples=15, deadline=None)
@given(st.integers(5, 10), st.integers(0, 10_000))
def test_property_wh_refiner_monotone(n, seed):
    """WH refinement never increases WH and preserves injectivity."""
    machine = build_machine(n, seed % 89)
    tg = build_tg(n, seed)
    rng = np.random.default_rng(seed)
    gamma0 = rng.permutation(machine.alloc_nodes)[:n]
    wh0 = wh_of(tg, machine, gamma0)
    refined = WHRefiner(max_passes=3).refine(tg, Mapping(gamma0.copy(), machine))
    assert wh_of(tg, machine, refined.gamma) <= wh0 + 1e-9
    assert np.unique(refined.gamma).shape[0] == n


@settings(max_examples=10, deadline=None)
@given(st.integers(5, 9), st.integers(0, 10_000), st.sampled_from(["volume", "message"]))
def test_property_mc_refiner_monotone(n, seed, metric):
    """MC/MMC refinement never worsens its target metric."""
    machine = build_machine(n, seed % 83)
    tg = build_tg(n, seed)
    rng = np.random.default_rng(seed + 1)
    gamma0 = rng.permutation(machine.alloc_nodes)[:n]
    field = "mc" if metric == "volume" else "mmc"
    before = getattr(evaluate_mapping(tg, machine, gamma0), field)
    # Message mode interprets edge weights as message counts: hand it the
    # unit-cost view so the tracked maximum is exactly MMC.
    work = tg if metric == "volume" else tg.unit_cost()
    refined = MCRefiner(metric=metric, max_swaps=100).refine(
        work, Mapping(gamma0.copy(), machine)
    )
    after = getattr(evaluate_mapping(tg, machine, refined.gamma), field)
    assert after <= before + 1e-9
    assert np.unique(refined.gamma).shape[0] == n
