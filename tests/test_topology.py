"""Tests for the torus, machine and allocation substrate."""

import networkx as nx
import numpy as np
import pytest

from repro.topology.allocation import AllocationSpec, SparseAllocator, torus_for_job
from repro.topology.machine import Machine
from repro.topology.torus import Torus3D


def torus_nx(dims):
    """networkx reference torus."""
    g = nx.Graph()
    nx_, ny, nz = dims
    for x in range(nx_):
        for y in range(ny):
            for z in range(nz):
                u = x + nx_ * (y + ny * z)
                for dim, size in enumerate(dims):
                    if size < 2:
                        continue
                    c = [x, y, z]
                    c[dim] = (c[dim] + 1) % size
                    v = c[0] + nx_ * (c[1] + ny * c[2])
                    g.add_edge(u, v)
    return g


class TestTorus:
    def test_num_nodes_and_diameter(self):
        t = Torus3D((4, 4, 4))
        assert t.num_nodes == 64
        assert t.diameter == 6

    def test_coords_roundtrip(self):
        t = Torus3D((3, 4, 5))
        for node in (0, 17, 59):
            x, y, z = t.coords()[node]
            assert t.node_id(int(x), int(y), int(z)) == node

    def test_hop_distance_matches_networkx(self):
        dims = (4, 3, 2)
        t = Torus3D(dims)
        ref = dict(nx.all_pairs_shortest_path_length(torus_nx(dims)))
        rng = np.random.default_rng(0)
        for _ in range(60):
            u, v = rng.integers(0, t.num_nodes, size=2)
            assert t.hop_distance(int(u), int(v)) == ref[int(u)][int(v)]

    def test_hop_distance_vectorized(self):
        t = Torus3D((4, 4, 4))
        u = np.array([0, 1, 2])
        v = np.array([63, 62, 61])
        d = t.hop_distance(u, v)
        assert d.shape == (3,)
        assert all(d[i] == t.hop_distance(int(u[i]), int(v[i])) for i in range(3))

    def test_wraparound_shortens(self):
        t = Torus3D((8, 1, 1))
        # 0 -> 7 is one wrap hop, not 7.
        assert t.hop_distance(0, 7) == 1

    def test_link_endpoints_inverse(self):
        t = Torus3D((3, 3, 3))
        lids = np.arange(t.num_links)[t.link_valid()]
        src, dst = t.link_endpoints(lids)
        assert np.all(t.hop_distance(src, dst) == 1)

    def test_link_bandwidths_by_dimension(self):
        t = Torus3D((3, 3, 3), bandwidths=(9.0, 4.0, 7.0))
        bw = t.link_bandwidths()
        lid_x = t.link_id(0, 0, 0)
        lid_y = t.link_id(0, 1, 0)
        lid_z = t.link_id(0, 2, 0)
        assert bw[lid_x] == 9.0 and bw[lid_y] == 4.0 and bw[lid_z] == 7.0

    def test_size1_dimension_has_no_links(self):
        t = Torus3D((4, 1, 4))
        valid = t.link_valid()
        lids = np.arange(t.num_links)
        dim = (lids % 6) // 2
        assert not valid[dim == 1].any()

    def test_graph_structure(self):
        t = Torus3D((4, 4, 4))
        g = t.graph()
        assert g.num_vertices == 64
        assert np.all(g.out_degree() == 6)
        assert g.is_connected()

    def test_latency_window(self):
        t = Torus3D((8, 8, 8))
        near = float(t.latency(0, 1))
        far = float(t.latency(0, t.node_id(4, 4, 4)))
        assert 1.0e-6 < near < 1.5e-6
        assert 2.0e-6 < far < 4.5e-6

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Torus3D((0, 2, 2))
        with pytest.raises(ValueError):
            Torus3D((2, 2, 2), bandwidths=(0.0, 1.0, 1.0))


class TestMachine:
    def test_basic_invariants(self, machine16):
        assert machine16.num_alloc_nodes == 16
        assert machine16.total_procs == 16
        assert machine16.alloc_mask().sum() == 16
        caps = machine16.node_capacities()
        assert caps[machine16.alloc_nodes].sum() == 16
        assert caps.sum() == 16

    def test_alloc_index(self, machine16):
        idx = machine16.alloc_index()
        for i, node in enumerate(machine16.alloc_nodes):
            assert idx[node] == i

    def test_duplicate_nodes_rejected(self, torus444):
        with pytest.raises(ValueError):
            Machine(torus444, [1, 1, 2])

    def test_out_of_range_rejected(self, torus444):
        with pytest.raises(ValueError):
            Machine(torus444, [0, 999])

    def test_nonuniform_capacities(self, torus444):
        m = Machine(torus444, [0, 1, 2], procs_per_node=np.array([4, 8, 4]))
        assert m.total_procs == 16
        assert not m.uniform_capacity()


class TestAllocation:
    def test_allocates_requested_count(self, torus444):
        mach = SparseAllocator(torus444).allocate(
            AllocationSpec(num_nodes=20, procs_per_node=2, fragmentation=0.4, seed=1)
        )
        assert mach.num_alloc_nodes == 20
        assert mach.total_procs == 40

    def test_deterministic(self, torus444):
        spec = AllocationSpec(num_nodes=10, fragmentation=0.3, seed=9)
        a = SparseAllocator(torus444).allocate(spec).alloc_nodes
        b = SparseAllocator(torus444).allocate(spec).alloc_nodes
        assert np.array_equal(a, b)

    def test_seeds_differ(self, torus444):
        a = SparseAllocator(torus444).allocate(
            AllocationSpec(num_nodes=10, fragmentation=0.3, seed=0)
        ).alloc_nodes
        b = SparseAllocator(torus444).allocate(
            AllocationSpec(num_nodes=10, fragmentation=0.3, seed=1)
        ).alloc_nodes
        assert not np.array_equal(a, b)

    def test_zero_fragmentation_is_compact(self, torus444):
        mach = SparseAllocator(torus444).allocate(
            AllocationSpec(num_nodes=8, fragmentation=0.0, seed=0)
        )
        # Contiguous along the SFC -> small mean pairwise hop distance.
        nodes = mach.alloc_nodes
        d = [
            mach.hop_distance(int(a), int(b))
            for a in nodes[:4]
            for b in nodes[:4]
        ]
        assert np.mean(d) < 3.0

    def test_fragmentation_spreads_allocation(self):
        torus = Torus3D((8, 8, 4))
        compact = SparseAllocator(torus).allocate(
            AllocationSpec(num_nodes=32, fragmentation=0.0, seed=3)
        )
        sparse = SparseAllocator(torus).allocate(
            AllocationSpec(num_nodes=32, fragmentation=0.6, seed=3)
        )

        def mean_dist(m):
            nodes = m.alloc_nodes
            u = np.repeat(nodes, nodes.shape[0])
            v = np.tile(nodes, nodes.shape[0])
            return float(np.mean(m.hop_distance(u, v)))

        assert mean_dist(sparse) > mean_dist(compact)

    def test_too_large_request_raises(self, torus444):
        with pytest.raises(ValueError):
            SparseAllocator(torus444).allocate(AllocationSpec(num_nodes=100))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AllocationSpec(num_nodes=0)
        with pytest.raises(ValueError):
            AllocationSpec(num_nodes=4, fragmentation=0.95)
        with pytest.raises(ValueError):
            AllocationSpec(num_nodes=4, procs_per_node=0)

    def test_torus_for_job_headroom(self):
        for n in (8, 50, 200):
            t = torus_for_job(n, headroom=2.0)
            assert t.num_nodes >= 2 * n

    def test_torus_for_job_rejects_bad(self):
        with pytest.raises(ValueError):
            torus_for_job(0)
