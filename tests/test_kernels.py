"""Unit equivalence tests for the vectorized kernel layer.

Each kernel is checked against the scalar reference it replaced:
``HopTable`` against ``Torus3D.hop_distance``, ``expand_frontier``
against a hand-rolled Python BFS level sweep, ``IntKeyMaxHeap`` against
``AddressableMaxHeap`` under a randomized operation stream, and
``batched_swap_gains`` / ``all_task_whops`` against the scalar
``_swap_gain`` / ``_task_whops`` helpers of Algorithm 2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph, expand_frontier
from repro.graph.task_graph import TaskGraph
from repro.kernels import (
    HopTable,
    all_task_whops,
    batched_swap_gains,
    hop_table_for,
    task_whops_many,
)
from repro.mapping.refine_wh import _swap_gain, _task_whops
from repro.topology.torus import Torus3D
from repro.util.heap import AddressableMaxHeap, IntKeyMaxHeap

TORUS_SHAPES = [(4, 4, 4), (5, 3, 2), (6, 1, 1), (2, 2, 7), (1, 1, 1), (8, 2, 5)]


# ----------------------------------------------------------------------
# HopTable
# ----------------------------------------------------------------------
class TestHopTable:
    @pytest.mark.parametrize("dims", TORUS_SHAPES)
    @pytest.mark.parametrize("use_matrix", [True, False])
    def test_pairwise_matches_hop_distance(self, dims, use_matrix):
        torus = Torus3D(dims)
        table = HopTable(torus, matrix_max_nodes=10_000 if use_matrix else 0)
        assert table.has_matrix == use_matrix
        rng = np.random.default_rng(3)
        a = rng.integers(0, torus.num_nodes, size=200)
        b = rng.integers(0, torus.num_nodes, size=200)
        np.testing.assert_array_equal(
            table.pairwise_hops(a, b), torus.hop_distance(a, b)
        )

    @pytest.mark.parametrize("use_matrix", [True, False])
    def test_hops_to_many_and_cross(self, use_matrix):
        torus = Torus3D((5, 4, 3))
        table = HopTable(torus, matrix_max_nodes=10_000 if use_matrix else 0)
        rng = np.random.default_rng(5)
        others = rng.integers(0, torus.num_nodes, size=37)
        np.testing.assert_array_equal(
            table.hops_to_many(11, others),
            torus.hop_distance(np.full(37, 11), others),
        )
        a = rng.integers(0, torus.num_nodes, size=9)
        cross = table.cross_hops(a, others)
        assert cross.shape == (9, 37)
        want = torus.hop_distance(
            np.repeat(a, others.shape[0]), np.tile(others, a.shape[0])
        ).reshape(9, 37)
        np.testing.assert_array_equal(cross, want)

    def test_matrix_threshold_respected(self):
        torus = Torus3D((4, 4, 4))
        assert HopTable(torus, matrix_max_nodes=63).has_matrix is False
        assert HopTable(torus, matrix_max_nodes=64).has_matrix is True

    def test_hop_table_for_caches_on_torus(self):
        torus = Torus3D((3, 3, 3))
        t1 = hop_table_for(torus)
        assert hop_table_for(torus) is t1
        assert torus.hop_table() is t1

    def test_hop_table_for_custom_threshold_bypasses_cache(self):
        torus = Torus3D((3, 3, 3))
        default = hop_table_for(torus)
        ringonly = hop_table_for(torus, matrix_max_nodes=0)
        assert ringonly is not default
        assert ringonly.has_matrix is False
        # the cached default-threshold table is untouched
        assert hop_table_for(torus) is default
        assert default.has_matrix is True


# ----------------------------------------------------------------------
# expand_frontier
# ----------------------------------------------------------------------
def _reference_expand(graph, frontier, seen):
    """The pre-kernel hand-rolled expansion loop (scalar reference)."""
    nxt = []
    for v in frontier.tolist():
        for u in graph.neighbors(v).tolist():
            if not seen[u]:
                seen[u] = True
                nxt.append(u)
    return np.asarray(sorted(set(nxt)), dtype=np.int64)


class TestExpandFrontier:
    @pytest.mark.parametrize("padded", [True, False])
    def test_matches_reference_sweep(self, padded):
        if padded:
            g = Torus3D((4, 3, 3)).graph()  # degree <= 6: padded path
            assert g.padded_neighbors() is not None
        else:
            rng = np.random.default_rng(8)
            src = rng.integers(0, 40, size=500)
            dst = rng.integers(0, 40, size=500)
            keep = src != dst
            g = CSRGraph.from_edges(40, src[keep], dst[keep])
            assert g.padded_neighbors() is None  # degree too high
        n = g.num_vertices
        seen_a = np.zeros(n, dtype=bool)
        seen_b = np.zeros(n, dtype=bool)
        frontier = np.asarray([0, 5, 7], dtype=np.int64)
        seen_a[frontier] = True
        seen_b[frontier] = True
        fa = frontier
        fb = frontier
        while fa.size or fb.size:
            fa = expand_frontier(g, fa, seen_a)
            fb = _reference_expand(g, fb, seen_b)
            np.testing.assert_array_equal(np.asarray(fa, dtype=np.int64), fb)
            np.testing.assert_array_equal(seen_a, seen_b)

    def test_empty_when_exhausted(self):
        g = Torus3D((2, 2, 1)).graph()
        seen = np.ones(g.num_vertices, dtype=bool)
        out = expand_frontier(g, np.asarray([0]), seen)
        assert out.size == 0

    def test_padded_rows_use_own_id(self):
        g = CSRGraph.from_edges(4, [0, 1, 1], [1, 0, 2])
        pad = g.padded_neighbors()
        assert pad is not None
        # vertex 3 has no neighbours: its row is all self-padding.
        assert set(pad[3].tolist()) == {3}


# ----------------------------------------------------------------------
# IntKeyMaxHeap
# ----------------------------------------------------------------------
class TestIntKeyMaxHeap:
    def test_randomized_stream_matches_addressable(self):
        rng = np.random.default_rng(13)
        n = 50
        a = AddressableMaxHeap()
        b = IntKeyMaxHeap(n)
        for _ in range(2000):
            op = rng.integers(0, 5)
            item = int(rng.integers(0, n))
            if op == 0 and item not in a:
                prio = float(rng.integers(0, 20))
                a.insert(item, prio)
                b.insert(item, prio)
            elif op == 1 and len(a):
                assert a.pop() == b.pop()
            elif op == 2 and item in a:
                assert a.remove(item) == b.remove(item)
            elif op == 3:
                prio = float(rng.integers(0, 20))
                if item in a:
                    a.update(item, prio)
                    b.update(item, prio)
            else:
                delta = float(rng.integers(0, 9))
                a.increase(item, delta)
                b.increase(item, delta)
            assert len(a) == len(b)
            assert a.validate() and b.validate()
        while a:
            assert a.pop() == b.pop()
        assert not b

    def test_from_priorities_matches_sequential_inserts(self):
        rng = np.random.default_rng(21)
        prios = rng.integers(0, 7, size=64).astype(float)  # many ties
        a = AddressableMaxHeap()
        for i, p in enumerate(prios):
            a.insert(i, float(p))
        b = IntKeyMaxHeap.from_priorities(prios)
        assert b.validate()
        while a:
            assert a.pop() == b.pop()
        assert not b

    def test_reinsert_after_remove(self):
        h = IntKeyMaxHeap(4)
        h.insert(2, 5.0)
        h.remove(2)
        assert 2 not in h
        h.insert(2, 1.0)
        h.insert(3, 1.0)  # same priority: 2 was inserted earlier
        assert h.pop() == (2, 1.0)
        assert h.pop() == (3, 1.0)

    def test_error_paths(self):
        h = IntKeyMaxHeap(3)
        with pytest.raises(IndexError):
            h.pop()
        with pytest.raises(KeyError):
            h.remove(1)
        with pytest.raises(KeyError):
            h.priority(0)
        h.insert(1, 2.0)
        with pytest.raises(ValueError):
            h.insert(1, 3.0)
        assert h.peek() == (1, 2.0)

    def test_negative_ids_rejected(self):
        """-1 sentinels must never wrap around onto the last item."""
        h = IntKeyMaxHeap(3)
        h.insert(2, 5.0)
        assert -1 not in h
        with pytest.raises(IndexError):
            h.insert(-1, 1.0)
        with pytest.raises(IndexError):
            h.update(-1, 1.0)
        with pytest.raises(IndexError):
            h.increase(-1, 1.0)
        with pytest.raises(KeyError):
            h.remove(-1)
        with pytest.raises(KeyError):
            h.priority(-1)
        assert h.priority(2) == 5.0  # untouched by the rejected calls


# ----------------------------------------------------------------------
# swap-gain kernels
# ----------------------------------------------------------------------
@pytest.fixture()
def swap_setup():
    torus = Torus3D((4, 4, 3))
    rng = np.random.default_rng(29)
    n = 30
    src = rng.integers(0, n, size=200)
    dst = rng.integers(0, n, size=200)
    keep = src != dst
    vol = rng.integers(1, 10, size=200).astype(np.float64)
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], vol[keep])
    gamma = rng.choice(torus.num_nodes, size=n, replace=False).astype(np.int64)
    return tg.symmetrized(), torus, gamma


class TestSwapGainKernels:
    @pytest.mark.parametrize("use_matrix", [True, False])
    def test_all_task_whops_matches_scalar(self, swap_setup, use_matrix):
        sym, torus, gamma = swap_setup
        table = HopTable(torus, matrix_max_nodes=10_000 if use_matrix else 0)
        got = all_task_whops(sym, table, gamma)
        want = [_task_whops(t, sym, torus, gamma) for t in range(sym.num_vertices)]
        np.testing.assert_array_equal(got, np.asarray(want))

    def test_task_whops_many_matches_scalar(self, swap_setup):
        sym, torus, gamma = swap_setup
        table = hop_table_for(torus)
        subset = np.asarray([0, 3, 7, 7, 29], dtype=np.int64)
        got = task_whops_many(sym, table, gamma, subset)
        want = [_task_whops(int(t), sym, torus, gamma) for t in subset]
        np.testing.assert_array_equal(got, np.asarray(want))

    @pytest.mark.parametrize("use_matrix", [True, False])
    def test_batched_gains_match_scalar(self, swap_setup, use_matrix):
        sym, torus, gamma = swap_setup
        table = HopTable(torus, matrix_max_nodes=10_000 if use_matrix else 0)
        rng = np.random.default_rng(31)
        for t1 in (0, 4, 17):
            whops_t1 = _task_whops(t1, sym, torus, gamma)
            others = np.asarray(
                [t for t in rng.permutation(sym.num_vertices)[:12] if t != t1],
                dtype=np.int64,
            )
            got = batched_swap_gains(
                sym, table, gamma, t1, others, whops_t1=whops_t1
            )
            want = [_swap_gain(t1, int(t2), sym, torus, gamma) for t2 in others]
            np.testing.assert_allclose(got, np.asarray(want), rtol=0, atol=1e-9)

    def test_batched_gains_empty_partners(self, swap_setup):
        sym, torus, gamma = swap_setup
        table = hop_table_for(torus)
        out = batched_swap_gains(
            sym, table, gamma, 0, np.empty(0, dtype=np.int64), whops_t1=0.0
        )
        assert out.shape == (0,)

    def test_isolated_pivot(self, swap_setup):
        _, torus, _ = swap_setup
        table = hop_table_for(torus)
        # pivot task 2 has no neighbours: only the partners' costs move.
        tg = TaskGraph.from_edges(3, [0], [1], [4.0])
        sym = tg.symmetrized()
        gamma = np.asarray([0, 1, 30], dtype=np.int64)
        got = batched_swap_gains(
            sym, table, gamma, 2, np.asarray([0, 1]), whops_t1=0.0
        )
        want = [_swap_gain(2, t2, sym, torus, gamma) for t2 in (0, 1)]
        np.testing.assert_array_equal(got, np.asarray(want))

    def test_isolated_partner(self, swap_setup):
        _, torus, _ = swap_setup
        table = hop_table_for(torus)
        # graph where task 2 is isolated: swapping with it moves only t1.
        tg = TaskGraph.from_edges(3, [0], [1], [4.0])
        sym = tg.symmetrized()
        gamma = np.asarray([0, 1, 30], dtype=np.int64)
        whops_t1 = _task_whops(0, sym, torus, gamma)
        got = batched_swap_gains(
            sym, table, gamma, 0, np.asarray([2]), whops_t1=whops_t1
        )
        want = _swap_gain(0, 2, sym, torus, gamma)
        assert got[0] == want
