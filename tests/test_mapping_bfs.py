"""Tests for the shared BFS-ordered candidate enumeration."""

import numpy as np
import pytest

from repro.mapping.bfs import bfs_nodes
from repro.topology.torus import Torus3D


@pytest.fixture()
def gm():
    return Torus3D((3, 3, 3)).graph()


class TestBfsNodes:
    def test_sources_come_first(self, gm):
        out = list(bfs_nodes(gm, [5, 7]))
        assert out[:2] == [5, 7]

    def test_visits_everything_once(self, gm):
        out = list(bfs_nodes(gm, [0]))
        assert sorted(out) == list(range(27))
        assert len(set(out)) == len(out)

    def test_level_order(self, gm):
        torus = Torus3D((3, 3, 3))
        out = list(bfs_nodes(gm, [0]))
        dists = [int(torus.hop_distance(0, v)) for v in out]
        assert dists == sorted(dists), "BFS must emit nodes level by level"

    def test_within_level_sorted_by_id(self, gm):
        torus = Torus3D((3, 3, 3))
        out = list(bfs_nodes(gm, [0]))
        dists = np.array([int(torus.hop_distance(0, v)) for v in out])
        for level in range(dists.max() + 1):
            chunk = [v for v, d in zip(out, dists) if d == level]
            assert chunk == sorted(chunk)

    def test_empty_sources(self, gm):
        assert list(bfs_nodes(gm, [])) == []

    def test_lazy_early_exit(self, gm):
        """Consuming only a few nodes must not traverse the whole graph."""
        gen = bfs_nodes(gm, [0])
        first_three = [next(gen) for _ in range(3)]
        assert first_three[0] == 0
        gen.close()  # no error on abandoning the generator


class TestUnitCost:
    def test_unit_cost_view(self):
        from repro.graph.task_graph import TaskGraph

        tg = TaskGraph.from_edges(4, [0, 1, 2], [1, 2, 3], [5.0, 7.0, 9.0])
        unit = tg.unit_cost()
        assert unit.num_messages == tg.num_messages
        assert unit.total_volume() == 3.0
        assert np.array_equal(unit.graph.indices, tg.graph.indices)
        # original untouched
        assert tg.total_volume() == 21.0
