"""Tests for the bounded (LRU) ArtifactCache."""

import numpy as np
import pytest

from repro.api.cache import ArtifactCache


def fill(cache, keys, nbytes=0):
    for k in keys:
        value = np.zeros(nbytes // 8, dtype=np.float64) if nbytes else k
        cache.get_or_compute("ns", k, lambda v=value: v)


class TestUnbounded:
    def test_default_never_evicts(self):
        cache = ArtifactCache()
        fill(cache, range(100))
        assert len(cache) == 100
        assert cache.stats("ns").evictions == 0

    def test_total_bytes_tracks_arrays(self):
        cache = ArtifactCache()
        cache.put("ns", "a", np.zeros(1000, dtype=np.float64))
        assert cache.total_bytes >= 8000


class TestEntryBudget:
    def test_lru_eviction_order(self):
        cache = ArtifactCache(max_entries=2)
        fill(cache, ["a", "b", "c"])
        assert cache.get("ns", "a") is None  # oldest evicted
        assert cache.get("ns", "b") == "b"
        assert cache.get("ns", "c") == "c"
        assert cache.stats("ns").evictions == 1
        assert cache.stats("ns").size == 2

    def test_hit_refreshes_recency(self):
        cache = ArtifactCache(max_entries=2)
        fill(cache, ["a", "b"])
        cache.get_or_compute("ns", "a", lambda: "recomputed")  # hit: a is MRU
        fill(cache, ["c"])  # evicts b, not a
        assert cache.get("ns", "a") == "a"
        assert cache.get("ns", "b") is None
        assert cache.get("ns", "c") == "c"

    def test_put_overwrite_does_not_double_count(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("ns", "a", "one")
        cache.put("ns", "a", "two")
        assert len(cache) == 1
        assert cache.stats("ns").size == 1
        assert cache.get("ns", "a") == "two"

    def test_eviction_spans_namespaces(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("n1", "a", "a")
        cache.put("n2", "b", "b")
        cache.put("n3", "c", "c")
        assert cache.get("n1", "a") is None
        assert cache.stats("n1").evictions == 1
        assert cache.stats("n1").size == 0

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)
        with pytest.raises(ValueError):
            ArtifactCache(max_bytes=0)


class TestByteBudget:
    def test_evicts_until_under_budget(self):
        cache = ArtifactCache(max_bytes=25_000)
        fill(cache, ["a", "b", "c"], nbytes=8_000)
        # three 8 KB arrays fit; a fourth pushes the oldest out
        fill(cache, ["d"], nbytes=8_000)
        assert cache.get("ns", "a") is None
        assert cache.get("ns", "d") is not None
        assert cache.total_bytes <= 25_000

    def test_oversized_artifact_still_returned(self):
        cache = ArtifactCache(max_bytes=1_000)
        big = np.zeros(10_000, dtype=np.float64)
        out = cache.get_or_compute("ns", "big", lambda: big)
        assert out is big  # computed and returned...
        assert cache.get("ns", "big") is None  # ...but not retained
        assert cache.total_bytes == 0

    def test_bytes_stats_consistent_after_eviction(self):
        cache = ArtifactCache(max_bytes=20_000)
        fill(cache, ["a", "b", "c", "d"], nbytes=8_000)
        s = cache.stats("ns")
        assert s.bytes == cache.total_bytes
        assert s.size == len(cache)
        assert s.evictions >= 1

    def test_clear_resets_bytes(self):
        cache = ArtifactCache(max_bytes=100_000)
        fill(cache, ["a", "b"], nbytes=8_000)
        cache.clear("ns")
        assert cache.total_bytes == 0
        assert len(cache) == 0


class TestEvictedRecompute:
    def test_eviction_then_miss_recomputes(self):
        cache = ArtifactCache(max_entries=1)
        calls = []
        cache.get_or_compute("ns", "a", lambda: calls.append("a") or "va")
        cache.get_or_compute("ns", "b", lambda: calls.append("b") or "vb")
        out = cache.get_or_compute("ns", "a", lambda: calls.append("a2") or "va2")
        assert out == "va2"
        assert calls == ["a", "b", "a2"]
        assert cache.stats("ns").misses == 3
