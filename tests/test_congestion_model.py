"""Property tests for the shared incremental congestion subsystem.

The contract of :class:`repro.kernels.congestion.CongestionModel`
(see its module docstring):

* the route table and the per-link load arrays are **never stale** —
  after any sequence of committed swaps they equal a from-scratch
  rebuild on the current Γ (both metrics, batched and scalar candidate
  kernels);
* the ``commTasks`` CSR refresh derives from the delta-updated route
  table without re-enumeration, and always equals the reference
  ``routes_bulk`` rebuild (content *and* task pop order);
* the batched Δ-candidate kernel returns exactly the scalar
  ``swap_improves`` verdicts, so both refiner paths commit identical
  swap sequences.
"""

import numpy as np
import pytest

from repro.graph.task_graph import TaskGraph
from repro.kernels.congestion import CongestionModel
from repro.mapping.base import Mapping
from repro.mapping.refine_mc import MCRefiner, _CongestionState
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.routing import RouteTable, routes_bulk
from repro.topology.torus import Torus3D


def make_instance(seed, n=None, integer_volumes=True):
    """Random (task_graph, machine, gamma) on a random small torus."""
    rng = np.random.default_rng(seed)
    torus = Torus3D(tuple(int(x) for x in rng.integers(2, 5, 3)))
    if n is None:
        n = int(rng.integers(8, min(30, torus.num_nodes) + 1))
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=n, procs_per_node=1, fragmentation=0.4, seed=seed)
    )
    m = 6 * n
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    if integer_volumes:
        vol = rng.integers(1, 9, keep.sum()).astype(np.float64)
    else:
        vol = rng.uniform(0.5, 5.0, keep.sum())
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], vol)
    gamma = rng.permutation(machine.alloc_nodes)[:n].copy()
    return tg, machine, gamma


def model_for(tg, machine, gamma, metric, **kw):
    src_t, dst_t, vol = tg.graph.edge_list()
    return CongestionModel(
        machine.torus, src_t, dst_t, vol, gamma.copy(), metric=metric, **kw
    )


def random_swaps(model, n_tasks, rng, count):
    for _ in range(count):
        t1, t2 = (int(x) for x in rng.choice(n_tasks, size=2, replace=False))
        model.commit_swap(t1, t2)


class TestDeltaUpdates:
    @pytest.mark.parametrize("metric", ["volume", "message"])
    @pytest.mark.parametrize("integer_volumes", [True, False])
    def test_loads_and_routes_match_rebuild(
        self, metric, integer_volumes, kernel_backend
    ):
        """After random swap sequences, state == from-scratch rebuild."""
        for seed in range(6):
            tg, machine, gamma = make_instance(
                seed, integer_volumes=integer_volumes
            )
            model = model_for(tg, machine, gamma, metric)
            rng = np.random.default_rng(seed + 500)
            # 24 commits = a multiple of the refresh interval: the last
            # refresh re-accumulated the loads from the (exact) route
            # table, so even float volumes compare bit-for-bit here.
            random_swaps(model, tg.num_tasks, rng, 24)
            fresh = model_for(tg, machine, model.gamma, metric)
            assert np.array_equal(model.msgs, fresh.msgs)
            assert np.array_equal(model.vols, fresh.vols)
            # One more commit sits between refreshes: exact for integer
            # volumes, bounded round-off otherwise.
            random_swaps(model, tg.num_tasks, rng, 1)
            fresh = model_for(tg, machine, model.gamma, metric)
            if integer_volumes:
                assert np.array_equal(model.msgs, fresh.msgs)
                assert np.array_equal(model.vols, fresh.vols)
            else:
                assert np.allclose(model.msgs, fresh.msgs, atol=1e-9)
                assert np.allclose(model.vols, fresh.vols, atol=1e-9)
            # The route table is never stale: spliced == re-enumerated.
            assert np.array_equal(model.routes.ptr, fresh.routes.ptr)
            assert np.array_equal(model.routes.links, fresh.routes.links)
            # host stays the inverse of gamma
            assert np.array_equal(
                model.host[model.gamma], np.arange(tg.num_tasks)
            )

    def test_route_table_replace_matches_build(self, kernel_backend):
        """RouteTable.replace_routes == a fresh build on the new pairs."""
        rng = np.random.default_rng(3)
        torus = Torus3D((4, 3, 3))
        m = 60
        src = rng.integers(0, torus.num_nodes, m)
        dst = rng.integers(0, torus.num_nodes, m)
        table = RouteTable.build(torus, src, dst)
        for round_ in range(10):
            pairs = np.unique(rng.integers(0, m, rng.integers(1, 8)))
            src[pairs] = rng.integers(0, torus.num_nodes, pairs.size)
            dst[pairs] = rng.integers(0, torus.num_nodes, pairs.size)
            links, msg = routes_bulk(torus, src[pairs], dst[pairs])
            order = np.argsort(msg, kind="stable")
            counts = np.bincount(msg, minlength=pairs.size)
            table.replace_routes(pairs, links[order], counts)
            fresh = RouteTable.build(torus, src, dst)
            assert np.array_equal(table.ptr, fresh.ptr)
            assert np.array_equal(table.links, fresh.links)


class TestCommIndex:
    @staticmethod
    def reference_comm_tasks(model):
        """The legacy rebuild: dict link -> ordered distinct task list."""
        src_n = model.gamma[model.src_t]
        dst_n = model.gamma[model.dst_t]
        keep = src_n != dst_n
        links, msg = routes_bulk(model.torus, src_n[keep], dst_n[keep])
        comm = {}
        edge_ids = np.flatnonzero(keep)[msg]
        for link, e in zip(links.tolist(), edge_ids.tolist()):
            bucket = comm.setdefault(link, [])
            bucket.append(int(model.src_t[e]))
            bucket.append(int(model.dst_t[e]))
        out = {}
        for link, tasks in comm.items():
            seen, ordered = set(), []
            for t in tasks:
                if t not in seen:
                    seen.add(t)
                    ordered.append(t)
            out[link] = ordered
        return out

    @pytest.mark.parametrize("metric", ["volume", "message"])
    def test_csr_maintenance_never_goes_stale(self, metric, kernel_backend):
        """With per-commit refresh the CSR always equals the reference.

        The refresh derives from the delta-updated route table (no route
        enumeration); equality with the from-scratch ``routes_bulk``
        rebuild after *every* commit proves the maintenance can never
        drift from the ground truth.
        """
        for seed in range(5):
            tg, machine, gamma = make_instance(seed + 20)
            model = model_for(tg, machine, gamma, metric, refresh_interval=1)
            rng = np.random.default_rng(seed + 900)
            for _ in range(15):
                t1, t2 = (
                    int(x) for x in rng.choice(tg.num_tasks, 2, replace=False)
                )
                model.commit_swap(t1, t2)
                ref = self.reference_comm_tasks(model)
                for link in np.flatnonzero(model.msgs > 0).tolist():
                    assert model.tasks_through(link) == ref.get(link, []), (
                        f"stale commTasks for link {link} (seed {seed})"
                    )
                # links without load expose empty task lists
                empty = np.flatnonzero(model.msgs == 0)[:5]
                for link in empty.tolist():
                    assert model.tasks_through(int(link)) == []

    def test_initial_index_matches_reference(self):
        tg, machine, gamma = make_instance(42)
        model = model_for(tg, machine, gamma, "volume")
        ref = self.reference_comm_tasks(model)
        for link in np.flatnonzero(model.msgs > 0).tolist():
            assert model.tasks_through(link) == ref[link]

    def test_default_cadence_matches_legacy_refresh_points(self):
        """On the paper cadence the index lags — and snaps back exactly."""
        tg, machine, gamma = make_instance(7)
        model = model_for(tg, machine, gamma, "volume", refresh_interval=8)
        rng = np.random.default_rng(77)
        for commit in range(1, 17):
            t1, t2 = (int(x) for x in rng.choice(tg.num_tasks, 2, replace=False))
            model.commit_swap(t1, t2)
            if commit % 8 == 0:
                ref = self.reference_comm_tasks(model)
                for link in np.flatnonzero(model.msgs > 0).tolist():
                    assert model.tasks_through(link) == ref[link]


class TestBatchedKernel:
    @pytest.mark.parametrize("metric", ["volume", "message"])
    def test_verdicts_match_scalar(self, metric, kernel_backend):
        """evaluate_swaps(t, cands) == [swap_improves(t, c) for c]."""
        for seed in range(6):
            tg, machine, gamma = make_instance(seed + 60)
            model = model_for(tg, machine, gamma, metric)
            rng = np.random.default_rng(seed + 1300)
            for _ in range(12):
                t1 = int(rng.integers(0, tg.num_tasks))
                others = np.setdiff1d(np.arange(tg.num_tasks), [t1])
                cands = rng.choice(
                    others, size=min(8, others.size), replace=False
                ).astype(np.int64)
                batched = model.evaluate_swaps(t1, cands)
                scalar = np.array(
                    [model.swap_improves(t1, int(c)) for c in cands]
                )
                assert np.array_equal(batched, scalar)
                # mutate between probes to vary the state
                a, b = (int(x) for x in rng.choice(tg.num_tasks, 2, replace=False))
                model.commit_swap(a, b)

    def test_empty_candidate_set(self):
        tg, machine, gamma = make_instance(1)
        model = model_for(tg, machine, gamma, "volume")
        assert model.evaluate_swaps(0, np.empty(0, dtype=np.int64)).size == 0

    @pytest.mark.parametrize("metric", ["volume", "message"])
    def test_refiner_batched_equals_scalar_path(self, metric):
        """Both MCRefiner candidate paths commit identical swap sequences."""
        for seed in range(5):
            tg, machine, gamma = make_instance(seed + 200)
            work = tg if metric == "volume" else tg.unit_cost()
            start = Mapping(gamma.copy(), machine)
            g_batched = MCRefiner(metric=metric).refine(work, start).gamma
            g_scalar = (
                MCRefiner(metric=metric, batch_candidates=False)
                .refine(work, start)
                .gamma
            )
            assert np.array_equal(g_batched, g_scalar)


class TestCommitReusesEvaluatedDeltas:
    """commit_swap reuses the winning candidate's ``evaluate_swaps`` deltas."""

    @pytest.mark.parametrize("metric", ["volume", "message"])
    @pytest.mark.parametrize("integer_volumes", [True, False])
    def test_stashed_payload_equals_scalar_derivation(
        self, metric, integer_volumes
    ):
        """The stash slices reproduce ``_swap_route_delta`` bit for bit."""
        for seed in range(5):
            tg, machine, gamma = make_instance(
                seed + 40, integer_volumes=integer_volumes
            )
            model = model_for(tg, machine, gamma, metric)
            rng = np.random.default_rng(seed + 4000)
            for _ in range(8):
                t1 = int(rng.integers(0, tg.num_tasks))
                others = np.setdiff1d(np.arange(tg.num_tasks), [t1])
                cands = rng.choice(
                    others, size=min(8, others.size), replace=False
                ).astype(np.int64)
                model.evaluate_swaps(t1, cands)
                for c in cands.tolist():
                    stashed = model._stashed_commit_payload(t1, c)
                    derived = model._swap_route_delta(t1, c)
                    for a, b in zip(stashed, derived):
                        assert np.array_equal(np.asarray(a), np.asarray(b))
                a, b = (int(x) for x in rng.choice(tg.num_tasks, 2, replace=False))
                model.commit_swap(a, b)

    @pytest.mark.parametrize("metric", ["volume", "message"])
    def test_commit_after_evaluate_matches_rebuild(self, metric, kernel_backend):
        """Delta-reused commits leave state == a from-scratch rebuild."""
        for seed in range(5):
            tg, machine, gamma = make_instance(seed + 70)
            model = model_for(tg, machine, gamma, metric)
            rng = np.random.default_rng(seed + 5000)
            for _ in range(12):
                t1 = int(rng.integers(0, tg.num_tasks))
                others = np.setdiff1d(np.arange(tg.num_tasks), [t1])
                cands = rng.choice(
                    others, size=min(8, others.size), replace=False
                ).astype(np.int64)
                model.evaluate_swaps(t1, cands)
                model.commit_swap(t1, int(cands[rng.integers(0, cands.size)]))
            fresh = model_for(tg, machine, model.gamma, metric)
            assert np.array_equal(model.msgs, fresh.msgs)
            assert np.array_equal(model.vols, fresh.vols)
            assert np.array_equal(model.routes.ptr, fresh.routes.ptr)
            assert np.array_equal(model.routes.links, fresh.routes.links)

    def test_commit_after_evaluate_enumerates_no_routes(self, monkeypatch):
        """The winning candidate's commit performs zero ``routes_bulk`` calls."""
        import repro.kernels.congestion as congestion_mod

        tg, machine, gamma = make_instance(90)
        model = model_for(tg, machine, gamma, "volume")
        calls = []
        real = congestion_mod.routes_bulk

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(congestion_mod, "routes_bulk", counting)
        rng = np.random.default_rng(900)
        t1 = int(rng.integers(0, tg.num_tasks))
        others = np.setdiff1d(np.arange(tg.num_tasks), [t1])
        cands = rng.choice(others, size=6, replace=False).astype(np.int64)
        model.evaluate_swaps(t1, cands)  # one bulk enumeration
        assert len(calls) == 1
        model.commit_swap(t1, int(cands[2]))  # reuses the stashed deltas
        assert len(calls) == 1
        # A swap outside the evaluated batch still derives its own.
        a, b = (int(x) for x in rng.choice(tg.num_tasks, 2, replace=False))
        model.commit_swap(a, b)
        assert len(calls) == 2

    def test_stash_invalidated_by_commit(self):
        tg, machine, gamma = make_instance(91)
        model = model_for(tg, machine, gamma, "volume")
        rng = np.random.default_rng(910)
        t1 = int(rng.integers(0, tg.num_tasks))
        others = np.setdiff1d(np.arange(tg.num_tasks), [t1])
        cands = rng.choice(others, size=4, replace=False).astype(np.int64)
        model.evaluate_swaps(t1, cands)
        assert model._stashed_commit_payload(t1, int(cands[0])) is not None
        model.commit_swap(t1, int(cands[0]))
        # Γ changed: the remaining candidates' deltas are stale.
        assert model._eval_stash is None
        assert model._stashed_commit_payload(t1, int(cands[1])) is None


class TestSharedRouteTable:
    def test_model_copies_external_table(self):
        """A cached table handed to the model must stay pristine."""
        tg, machine, gamma = make_instance(11)
        src_t, dst_t, _ = tg.graph.edge_list()
        table = RouteTable.build(
            machine.torus, gamma[src_t.astype(np.int64)], gamma[dst_t.astype(np.int64)]
        )
        ptr0, links0 = table.ptr.copy(), table.links.copy()
        model = model_for(tg, machine, gamma, "volume")
        model2 = model_for(tg, machine, gamma, "volume", route_table=table)
        # seeding from the table reproduces the from-scratch state
        assert np.array_equal(model.msgs, model2.msgs)
        assert np.array_equal(model.vols, model2.vols)
        rng = np.random.default_rng(13)
        random_swaps(model2, tg.num_tasks, rng, 10)
        assert np.array_equal(table.ptr, ptr0)
        assert np.array_equal(table.links, links0)

    def test_refiner_shares_table_through_cache(self):
        from repro.api.cache import ArtifactCache

        tg, machine, gamma = make_instance(17)
        start = Mapping(gamma.copy(), machine)
        cache = ArtifactCache()
        plain = MCRefiner().refine(tg, start).gamma
        first = MCRefiner().refine(tg, start, cache=cache).gamma
        stats = cache.stats("route_table")
        assert stats.misses == 1 and stats.hits == 0
        second = MCRefiner(metric="message").refine(tg, start, cache=cache).gamma
        assert cache.stats("route_table").hits == 1
        assert np.array_equal(plain, first)
        # message-metric refinement on the same endpoints reuses the
        # table; its own result must equal the uncached run too.
        assert np.array_equal(
            second, MCRefiner(metric="message").refine(tg, start).gamma
        )

    def test_facade_keeps_legacy_signature(self):
        tg, machine, gamma = make_instance(23)
        state = _CongestionState(tg, machine, gamma.copy(), "volume")
        assert isinstance(state, CongestionModel)
        mc, ac = state.current_mc_ac()
        assert mc >= 0.0 and ac >= 0.0
