"""Tests for the parallel execution engine (repro.api.plan / executor / store).

Pins the tentpole contracts of the planner/executor split:

* the planner dedupes shared artifacts into an explicit DAG (one
  grouping node per key, ``def_baseline`` producer edges, chained
  ``route_table`` consumers) whose dependencies always point backwards;
* ``backend="serial"`` reproduces the legacy sequential loop bit for
  bit, and the ``thread``/``process`` backends produce byte-identical
  mappings and metrics on a Fig. 3-shaped sweep;
* the cross-process :class:`DiskArtifactStore` round-trips every
  artifact shape, tolerates arbitrary corruption, and feeds warm
  starts (zero recomputes) through the cache's disk layering;
* the :class:`ArtifactCache` concurrent mode keeps statistics exact and
  computes each key once under thread hammering.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.api import (
    ArtifactCache,
    DiskArtifactStore,
    MappingService,
    MapRequest,
    build_plan,
)
from repro.api.executor import execute_plan
from repro.api.request import MapResponse
from repro.api.store import DEFAULT_PERSIST_NAMESPACES
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import ExperimentProfile
from repro.graph.task_graph import TaskGraph
from repro.mapping.pipeline import MAPPER_NAMES
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.routing import RouteTable
from repro.topology.torus import Torus3D


@pytest.fixture()
def setup():
    """24-rank task graph on 8 nodes × 3 processors (4x4x2 torus)."""
    torus = Torus3D((4, 4, 2))
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=8, procs_per_node=3, fragmentation=0.3, seed=4)
    )
    rng = np.random.default_rng(7)
    n, m = 24, 160
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], rng.uniform(1, 5, keep.sum()))
    return tg, machine


def _assert_responses_identical(a: MapResponse, b: MapResponse) -> None:
    """Byte-identical mapping content (times are wall-clock, not pinned)."""
    assert a.algorithm == b.algorithm
    assert a.tag == b.tag
    np.testing.assert_array_equal(a.fine_gamma, b.fine_gamma)
    np.testing.assert_array_equal(a.coarse_gamma, b.coarse_gamma)
    np.testing.assert_array_equal(a.result.group_of_task, b.result.group_of_task)
    if a.metrics is None:
        assert b.metrics is None
    else:
        assert a.metrics.as_dict() == b.metrics.as_dict()


class TestPlanner:
    def test_dag_shape_and_dedupe(self, setup):
        """One grouping node per key; producer edges; backward deps only."""
        tg, machine = setup
        reqs = [
            MapRequest(
                task_graph=tg, machine=machine, algorithms=("UG", "UWH"), seed=2
            ),
            MapRequest(task_graph=tg, machine=machine, algorithms=("UMC",), seed=2),
            MapRequest(task_graph=tg, machine=machine, algorithms=("UG",), seed=9),
        ]
        plan = build_plan(reqs)
        plan.validate()
        groupings = [n for n in plan.nodes if n.kind == "grouping"]
        algos = [n for n in plan.nodes if n.kind == "algo"]
        # seeds 2 and 9 -> two distinct grouping artifacts, shared across
        # the three seed-2 algorithms.
        assert len(groupings) == 2
        assert len(algos) == 4
        assert [n.slot for n in algos] == [0, 1, 2, 3]
        seed2 = groupings[0]
        for node in algos[:3]:
            assert seed2.index in node.deps
        assert groupings[1].index in algos[3].deps
        # prep-time billing: the first consumer of each grouping.
        assert seed2.charges == algos[0].index
        assert groupings[1].charges == algos[3].index

    def test_route_table_consumers_chained(self, setup):
        """UMC -> UMMC ordering guarantee (route one placement once)."""
        tg, machine = setup
        plan = build_plan(
            MapRequest(
                task_graph=tg, machine=machine, algorithms=("UMC", "UMMC"), seed=1
            )
        )
        umc = next(n for n in plan.nodes if n.algorithm == "UMC")
        ummc = next(n for n in plan.nodes if n.algorithm == "UMMC")
        assert umc.index in ummc.deps

    def test_def_baseline_producer_edge(self, setup):
        """TMAP waits for the batch's DEF run instead of re-running it."""
        tg, machine = setup
        plan = build_plan(
            MapRequest(
                task_graph=tg, machine=machine, algorithms=("DEF", "TMAP"), seed=1
            )
        )
        def_node = next(n for n in plan.nodes if n.algorithm == "DEF")
        tmap = next(n for n in plan.nodes if n.algorithm == "TMAP")
        assert def_node.index in tmap.deps

    def test_unknown_algorithm_fails_before_execution(self, setup):
        tg, machine = setup
        with pytest.raises(ValueError):
            build_plan(
                MapRequest(task_graph=tg, machine=machine, algorithms=("NOPE",))
            )

    def test_injected_groups_skip_grouping_node(self, setup):
        tg, machine = setup
        service = MappingService()
        groups = service.grouping(tg, machine, seed=5)
        plan = build_plan(
            MapRequest(
                task_graph=tg,
                machine=machine,
                algorithms=("UG", "UWH"),
                seed=5,
                groups=groups,
            )
        )
        assert all(n.kind == "algo" for n in plan.nodes)


class TestBackendParity:
    #: Tiny Fig. 3-shaped sweep: two corpus matrices, one processor
    #: count, one allocation — the real harness construction, scaled to
    #: test runtime.
    PROFILE = ExperimentProfile(
        name="engine-test",
        rows_per_unit=300,
        proc_counts=(32,),
        procs_per_node=4,
        fragmentation=0.3,
        alloc_seeds=(0,),
        corpus_names=("cage15_like", "rgg_n23_like"),
        repetitions=1,
    )

    def _sweep_requests(self):
        """The real Fig. 2/3 sweep constructor, scaled by the profile."""
        from repro.experiments.fig2 import sweep_requests

        return sweep_requests(self.PROFILE, WorkloadCache(self.PROFILE))

    def test_serial_matches_legacy_sequential_loop(self):
        """The engine's serial backend == the pre-planner loop, bit for bit."""
        requests = self._sweep_requests()
        engine = MappingService().map_batch(requests, backend="serial")
        reference_service = MappingService()
        reference = [
            reference_service._run_one(request, algo)
            for request in requests
            for algo in request.algorithms
        ]
        assert len(engine) == len(reference)
        for a, b in zip(engine, reference):
            _assert_responses_identical(a, b)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends_match_serial(self, backend):
        """Byte-identical MapResponses on the Fig. 3 sweep, any backend."""
        requests = self._sweep_requests()
        serial = MappingService().map_batch(requests, backend="serial")
        parallel = MappingService().map_batch(
            requests, backend=backend, workers=4
        )
        assert len(serial) == len(parallel) == len(requests) * len(MAPPER_NAMES)
        for a, b in zip(serial, parallel):
            _assert_responses_identical(a, b)

    def test_store_tiers_match_serial(self, store_tier, tmp_path):
        """Byte-identical MapResponses whichever store tier carries the
        artifacts: the shm segment codec and mmap disk reads must be
        invisible to the engine's results."""
        requests = self._sweep_requests()
        serial = MappingService().map_batch(requests, backend="serial")
        tiered = MappingService().map_batch(
            requests,
            backend="process",
            workers=2,
            store_dir=str(tmp_path / store_tier),
            store_tier=store_tier,
        )
        assert len(serial) == len(tiered)
        for a, b in zip(serial, tiered):
            _assert_responses_identical(a, b)

    def test_unknown_backend_rejected(self, setup):
        tg, machine = setup
        with pytest.raises(ValueError):
            MappingService().map_batch(
                MapRequest(task_graph=tg, machine=machine), backend="gpu"
            )
        with pytest.raises(ValueError):
            MappingService(backend="gpu")


class TestExecutionSemantics:
    def test_grouping_computed_once_threaded(self, setup, monkeypatch):
        """Planner dedupe holds under the thread backend (call counting)."""
        tg, machine = setup
        import repro.mapping.pipeline as pipeline_mod

        calls = []
        real = pipeline_mod.prepare_groups

        def counting(*args, **kwargs):
            calls.append(kwargs.get("seed"))
            return real(*args, **kwargs)

        monkeypatch.setattr(pipeline_mod, "prepare_groups", counting)
        service = MappingService()
        responses = service.map_batch(
            [
                MapRequest(
                    task_graph=tg,
                    machine=machine,
                    algorithms=("UG", "UWH", "UMC", "UMMC", "SMAP"),
                    seed=2,
                ),
                MapRequest(
                    task_graph=tg, machine=machine, algorithms=("UTH",), seed=2
                ),
            ],
            backend="thread",
            workers=4,
        )
        assert len(responses) == 6
        assert len(calls) == 1  # one shared grouping across both requests
        for r in responses[1:]:
            np.testing.assert_array_equal(
                r.result.group_of_task, responses[0].result.group_of_task
            )

    def test_prep_time_charged_to_first_consumer(self, setup):
        """Figure 3 accounting: exactly one response pays the grouping."""
        tg, machine = setup
        for backend in ("serial", "thread"):
            responses = MappingService().map_batch(
                MapRequest(
                    task_graph=tg,
                    machine=machine,
                    algorithms=("UG", "UWH", "SMAP"),
                    seed=3,
                ),
                backend=backend,
            )
            cached_flags = [r.grouping_cached for r in responses]
            assert cached_flags == [False, True, True]
            assert responses[0].prep_time > 0.0
            assert responses[1].prep_time == 0.0
            assert responses[2].prep_time == 0.0

    def test_node_failure_propagates(self, setup, monkeypatch):
        tg, machine = setup
        import repro.mapping.greedy as greedy_mod

        def boom(*args, **kwargs):
            raise RuntimeError("injected placement failure")

        monkeypatch.setattr(greedy_mod.GreedyMapper, "map", boom)
        for backend in ("serial", "thread"):
            with pytest.raises(RuntimeError, match="injected"):
                MappingService().map_batch(
                    MapRequest(task_graph=tg, machine=machine, algorithms=("UG",)),
                    backend=backend,
                )

    def test_execute_plan_collects_in_request_order(self, setup):
        tg, machine = setup
        reqs = [
            MapRequest(
                task_graph=tg, machine=machine, algorithms=("UWH",), seed=1, tag="a"
            ),
            MapRequest(
                task_graph=tg, machine=machine, algorithms=("UG",), seed=1, tag="b"
            ),
        ]
        responses = execute_plan(build_plan(reqs), MappingService(), backend="thread")
        assert [(r.tag, r.algorithm) for r in responses] == [
            ("a", "UWH"),
            ("b", "UG"),
        ]


class TestProcessStoreSharing:
    def test_artifacts_persist_and_warm_start(self, setup, tmp_path, monkeypatch):
        """Workers persist artifacts; a later service reads, not recomputes."""
        tg, machine = setup
        store_dir = str(tmp_path / "artifacts")
        request = MapRequest(
            task_graph=tg,
            machine=machine,
            algorithms=("UG", "UWH", "UMC"),
            seed=2,
            evaluate=True,
        )
        cold = MappingService().map_batch(
            request, backend="process", workers=2, store_dir=store_dir
        )
        store = DiskArtifactStore(store_dir)
        assert store.file_count("grouping") == 1
        assert store.file_count("route_table") >= 1

        # A fresh service layered over the same store recomputes nothing.
        import repro.mapping.pipeline as pipeline_mod

        calls = []
        real = pipeline_mod.prepare_groups

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(pipeline_mod, "prepare_groups", counting)
        warm_service = MappingService(cache=ArtifactCache(store=store))
        warm = warm_service.map_batch(request, backend="serial")
        assert len(calls) == 0
        stats = warm_service.cache.stats("grouping")
        assert stats.misses == 0 and stats.store_hits >= 1
        for a, b in zip(cold, warm):
            _assert_responses_identical(a, b)
        # Disk-served groupings count as cached: nobody pays prep_time.
        assert all(r.grouping_cached for r in warm)

    def test_default_store_is_batch_scoped_temp(self, setup):
        """Without a store_dir or attached store, nothing leaks to disk."""
        tg, machine = setup
        responses = MappingService().map_batch(
            MapRequest(task_graph=tg, machine=machine, algorithms=("UG", "UWH")),
            backend="process",
            workers=2,
        )
        assert [r.algorithm for r in responses] == ["UG", "UWH"]


class TestDiskArtifactStore:
    def test_round_trip_shapes(self, tmp_path, setup):
        tg, _ = setup
        store = DiskArtifactStore(str(tmp_path))
        cases = {
            "array": np.arange(37, dtype=np.int64).reshape(37),
            "floats": np.linspace(0, 1, 11),
            "tuple": (np.arange(4), np.ones(3), 7, "label", None),
            "nested": {"a": [np.arange(2), (np.zeros(2), True)], "b": 1.5},
            "scalar": 42,
        }
        for key, value in cases.items():
            store.save("ns", key, value)
        loaded = {key: store.load("ns", key) for key in cases}
        np.testing.assert_array_equal(loaded["array"], cases["array"])
        np.testing.assert_array_equal(loaded["floats"], cases["floats"])
        t = loaded["tuple"]
        assert isinstance(t, tuple) and t[2] == 7 and t[3] == "label"
        assert t[4] is None
        np.testing.assert_array_equal(t[0], cases["tuple"][0])
        np.testing.assert_array_equal(
            loaded["nested"]["a"][1][0], np.zeros(2)
        )
        assert loaded["nested"]["b"] == 1.5
        assert loaded["scalar"] == 42
        # Objects without native encodings round-trip through pickle.
        store.save("ns", "graph", tg)
        back = store.load("ns", "graph")
        np.testing.assert_array_equal(back.graph.indptr, tg.graph.indptr)
        np.testing.assert_array_equal(back.graph.weights, tg.graph.weights)

    def test_route_table_native_round_trip(self, tmp_path):
        torus = Torus3D((3, 3, 2))
        rng = np.random.default_rng(5)
        src = rng.integers(0, torus.num_nodes, 25)
        dst = rng.integers(0, torus.num_nodes, 25)
        table = RouteTable.build(torus, src, dst)
        store = DiskArtifactStore(str(tmp_path))
        store.save("route_table", ("k",), table)
        back = store.load("route_table", ("k",))
        assert isinstance(back, RouteTable)
        assert back.num_links == table.num_links
        np.testing.assert_array_equal(back.ptr, table.ptr)
        np.testing.assert_array_equal(back.links, table.links)

    def test_missing_is_default(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        assert store.load("ns", "nothing") is None
        assert store.load("ns", "nothing", default="fallback") == "fallback"
        assert not store.contains("ns", "nothing")

    @pytest.mark.parametrize(
        "corruption",
        ["garbage", "truncate", "empty"],
        ids=["garbage-bytes", "truncated-zip", "empty-file"],
    )
    def test_corruption_reads_as_miss(self, tmp_path, corruption):
        """Any corrupted file is a miss — recompute and overwrite, no crash."""
        store = DiskArtifactStore(str(tmp_path))
        value = {"x": np.arange(100)}
        store.save("ns", "k", value)
        path = store.path_for("ns", "k")
        if corruption == "garbage":
            with open(path, "wb") as fh:
                fh.write(b"\x00not-an-npz\xff" * 10)
        elif corruption == "truncate":
            with open(path, "rb") as fh:
                blob = fh.read()
            with open(path, "wb") as fh:
                fh.write(blob[: len(blob) // 2])
        else:
            open(path, "wb").close()
        assert store.load("ns", "k", default="miss") == "miss"
        # The slot is recoverable: a fresh save round-trips again.
        store.save("ns", "k", value)
        np.testing.assert_array_equal(store.load("ns", "k")["x"], value["x"])

    def test_key_collision_reads_as_miss(self, tmp_path, monkeypatch):
        """Same filename, different key: the key check refuses the value."""
        store = DiskArtifactStore(str(tmp_path))
        monkeypatch.setattr(
            DiskArtifactStore,
            "path_for",
            lambda self, ns, key: str(tmp_path / "fixed.npz"),
        )
        store.save("ns", ("key", 1), np.arange(3))
        assert store.load("ns", ("key", 2), default="miss") == "miss"
        np.testing.assert_array_equal(store.load("ns", ("key", 1)), np.arange(3))

    def test_clear_and_counts(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        store.save("a", 1, np.arange(2))
        store.save("a", 2, np.arange(2))
        store.save("b", 1, np.arange(2))
        assert store.file_count() == 3
        assert store.clear("a") == 2
        assert store.file_count() == 1
        assert store.clear() == 1
        assert store.file_count() == 0

    def test_cache_layering_write_and_read_through(self, tmp_path):
        """ArtifactCache(store=...) persists computes and serves warm reads."""
        store = DiskArtifactStore(str(tmp_path))
        cache = ArtifactCache(store=store)
        value = cache.get_or_compute("grouping", ("k",), lambda: np.arange(5))
        np.testing.assert_array_equal(value, np.arange(5))
        assert store.contains("grouping", ("k",))
        # Non-persisted namespaces stay memory-only.
        cache.get_or_compute("hop_table", ("k",), lambda: np.arange(5))
        assert not store.contains("hop_table", ("k",))

        fresh = ArtifactCache(store=store)
        loaded = fresh.get_or_compute(
            "grouping", ("k",), lambda: pytest.fail("should read from disk")
        )
        np.testing.assert_array_equal(loaded, np.arange(5))
        stats = fresh.stats("grouping")
        assert (stats.hits, stats.misses, stats.store_hits) == (1, 0, 1)

    def test_default_persist_namespaces(self):
        assert "grouping" in DEFAULT_PERSIST_NAMESPACES
        assert "route_table" in DEFAULT_PERSIST_NAMESPACES
        assert "def_baseline" in DEFAULT_PERSIST_NAMESPACES


class TestConcurrentCache:
    def test_stats_exact_under_thread_hammering(self):
        """Atomic counters: hits + misses add up, one compute per key."""
        cache = ArtifactCache()
        cache.enable_concurrency()
        assert cache.concurrent
        num_threads, per_thread, num_keys = 8, 200, 20
        computed = []
        lock = threading.Lock()

        def compute(key):
            with lock:
                computed.append(key)
            return key * 3

        barrier = threading.Barrier(num_threads)

        def worker(tid):
            barrier.wait()
            rng = np.random.default_rng(tid)
            for _ in range(per_thread):
                key = int(rng.integers(0, num_keys))
                assert cache.get_or_compute("ns", key, lambda k=key: compute(k)) == key * 3

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats("ns")
        assert stats.lookups == num_threads * per_thread
        assert stats.misses == num_keys
        assert sorted(set(computed)) == sorted(computed)  # each key once
        assert stats.size == num_keys

    def test_nested_get_or_compute_does_not_deadlock(self):
        """Computes may consult the cache (the DEF-baseline pattern)."""
        cache = ArtifactCache(concurrent=True)

        def outer():
            inner = cache.get_or_compute("inner", "k", lambda: 10)
            return inner + 1

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_compute("outer", "k", outer)
                )
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert results == [11] * 8

    def test_serial_behaviour_unchanged(self):
        """Without enable_concurrency the semantics are the PR 3 ones."""
        cache = ArtifactCache(max_entries=2)
        assert not cache.concurrent
        cache.get_or_compute("ns", 1, lambda: "a")
        cache.get_or_compute("ns", 2, lambda: "b")
        cache.get_or_compute("ns", 3, lambda: "c")
        assert len(cache) == 2
        assert cache.stats("ns").evictions == 1


class TestMapBatchCli:
    def _manifest(self, tmp_path, payload) -> str:
        path = tmp_path / "reqs.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_manifest_batch_runs(self, tmp_path, capsys):
        from repro.api.cli import main

        manifest = self._manifest(
            tmp_path,
            {
                "defaults": {"procs": 32, "ppn": 4, "algos": "DEF,UG"},
                "requests": [
                    {"matrix": "cage15_like"},
                    {"matrix": "cage15_like", "algos": ["UWH"], "tag": "w"},
                ],
            },
        )
        rc = main(
            [
                "map-batch",
                "--manifest",
                manifest,
                "--backend",
                "thread",
                "--workers",
                "2",
                "--json",
                "--stats",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 2 and payload["responses"] == 3
        assert payload["backend"] == "thread"
        assert [r["algorithm"] for r in payload["results"]] == ["DEF", "UG", "UWH"]
        assert payload["results"][2]["tag"] == "w"
        assert payload["requests_per_s"] > 0

    def test_manifest_list_form(self, tmp_path, capsys):
        from repro.api.cli import main

        manifest = self._manifest(
            tmp_path,
            [{"matrix": "cage15_like", "procs": 32, "ppn": 4, "algos": "UG"}],
        )
        assert main(["map-batch", "--manifest", manifest, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["algorithm"] for r in payload["results"]] == ["UG"]

    def test_bad_manifest_errors(self, tmp_path, capsys):
        from repro.api.cli import main

        assert main(["map-batch", "--manifest", str(tmp_path / "no.json")]) == 2
        assert "error:" in capsys.readouterr().err
        manifest = self._manifest(tmp_path, {"requests": []})
        assert main(["map-batch", "--manifest", manifest]) == 2
        manifest = self._manifest(tmp_path, [{"algos": "UG"}])
        assert main(["map-batch", "--manifest", manifest]) == 2
        manifest = self._manifest(tmp_path, [{"matrix": "cage15_like", "algos": "NOPE"}])
        assert main(["map-batch", "--manifest", manifest]) == 2


def _load_compare_bench():
    import importlib.util
    import os

    spec = importlib.util.spec_from_file_location(
        "compare_bench",
        os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks",
            "compare_bench.py",
        ),
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestCompareBench:
    def _payload(self, times):
        return {"geo_mean_map_time_s": times}

    def test_detects_regression_and_ok(self):
        mod = _load_compare_bench()

        base = self._payload({"UG": 0.010, "UWH": 0.020})
        same = self._payload({"UG": 0.010, "UWH": 0.020})
        ok, ratio, _ = mod.compare_snapshots(base, same)
        assert ok and ratio == pytest.approx(1.0)

        slower = self._payload({"UG": 0.015, "UWH": 0.030})
        ok, ratio, lines = mod.compare_snapshots(base, slower, threshold=1.25)
        assert not ok and ratio == pytest.approx(1.5)
        assert "REGRESSION" in lines[-1]

        # New algorithms are ignored; missing overlap raises.
        extra = self._payload({"UG": 0.010, "UWH": 0.020, "NEW": 1.0})
        ok, _, _ = mod.compare_snapshots(base, extra)
        assert ok
        with pytest.raises(ValueError):
            mod.compare_snapshots(base, self._payload({"OTHER": 1.0}))


class TestBatchThroughputGate:
    """The --gate-batch checks of benchmarks/compare_bench.py."""

    def _snapshot(self, *, cpus, amortized, spawn, rps=10.0):
        return {
            "cpus": cpus,
            "batch_throughput": {
                "serial": {"elapsed_s": 10.0, "requests_per_s": rps},
                "thread": {
                    "2": {"elapsed_s": spawn, "requests_per_s": rps},
                },
                "process": {
                    "2": {"elapsed_s": spawn, "requests_per_s": rps},
                },
                "persistent": {
                    "thread": {
                        "2": {
                            "amortized_elapsed_s": amortized,
                            "requests_per_s": 10.0 * spawn / amortized,
                        }
                    },
                    "process": {
                        "2": {
                            "amortized_elapsed_s": amortized,
                            "requests_per_s": 10.0 * spawn / amortized,
                        }
                    },
                },
            },
        }

    def test_persistent_must_beat_spawn_per_call(self):
        mod = _load_compare_bench()
        base = self._snapshot(cpus=1, amortized=5.0, spawn=10.0)
        good = self._snapshot(cpus=1, amortized=5.0, spawn=10.0)
        ok, lines = mod.gate_batch_throughput(base, good)
        assert ok and any("OK" in line for line in lines)

        bad = self._snapshot(cpus=1, amortized=12.0, spawn=10.0)
        ok, lines = mod.gate_batch_throughput(base, bad)
        assert not ok and any("REGRESSION" in line for line in lines)

    def test_missing_sections_fail_or_skip(self):
        mod = _load_compare_bench()
        new = self._snapshot(cpus=4, amortized=5.0, spawn=10.0)
        ok, lines = mod.gate_batch_throughput({}, {})
        assert not ok
        # Baseline without the section: self-gate runs, cross-check skips.
        ok, lines = mod.gate_batch_throughput({}, new)
        assert ok and any("skipped" in line for line in lines)

    def test_cross_check_only_arms_on_multicore_pairs(self):
        mod = _load_compare_bench()
        single = self._snapshot(cpus=1, amortized=5.0, spawn=10.0)
        multi_fast = self._snapshot(cpus=4, amortized=5.0, spawn=10.0, rps=10.0)
        ok, lines = mod.gate_batch_throughput(single, multi_fast)
        assert ok and any("cross-check skipped" in line for line in lines)

        # Both multi-core: a 2x requests/sec collapse fails the gate.
        multi_slow = self._snapshot(cpus=4, amortized=5.0, spawn=10.0, rps=5.0)
        ok, lines = mod.gate_batch_throughput(multi_fast, multi_slow, 1.25)
        assert not ok and any("geo-mean throughput" in line for line in lines)
        # And the reverse (faster) direction passes.
        ok, _ = mod.gate_batch_throughput(multi_slow, multi_fast, 1.25)
        assert ok


class TestIpcGate:
    """The --gate-ipc checks of benchmarks/compare_bench.py."""

    def _snapshot(self, *, shm_load=0.5, disk_load=1.0, disk_reads=0, batch_files=0):
        arts = {"grouping-64KB": None, "block-8MB": None}
        return {
            "ipc": {
                "shm_available": True,
                "tiers": {
                    "disk": {
                        "artifacts": {
                            n: {"save_s": 1.0, "load_s": disk_load} for n in arts
                        }
                    },
                    "shm": {
                        "artifacts": {
                            n: {"save_s": 1.0, "load_s": shm_load} for n in arts
                        }
                    },
                },
                "warm_process_batch": {
                    "store_tier": "shm",
                    "parent_disk_loads": disk_reads,
                    "batch_disk_files": batch_files,
                },
            }
        }

    def test_shm_must_beat_disk_on_load_geo_mean(self):
        mod = _load_compare_bench()
        ok, lines = mod.gate_ipc(self._snapshot(shm_load=0.5, disk_load=1.0))
        assert ok and any("OK" in line for line in lines)
        ok, lines = mod.gate_ipc(self._snapshot(shm_load=2.0, disk_load=1.0))
        assert not ok and any("REGRESSION" in line for line in lines)

    def test_warm_batch_must_do_zero_disk_reads(self):
        mod = _load_compare_bench()
        ok, lines = mod.gate_ipc(self._snapshot(disk_reads=3))
        assert not ok and any("must not touch disk" in line for line in lines)
        ok, lines = mod.gate_ipc(self._snapshot(batch_files=1))
        assert not ok

    def test_shm_less_snapshots_skip_with_a_note(self):
        mod = _load_compare_bench()
        ok, lines = mod.gate_ipc({"ipc": {"shm_available": False}})
        assert ok and any("skipped" in line for line in lines)
        # A missing section or a malformed shm-available one fails: a
        # green gate must mean the check actually ran.
        ok, _ = mod.gate_ipc({})
        assert not ok
        ok, lines = mod.gate_ipc({"ipc": {"shm_available": True, "tiers": {}}})
        assert not ok and any("MALFORMED" in line for line in lines)
