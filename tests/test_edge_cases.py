"""Edge-case and failure-injection tests across modules."""

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.task_graph import TaskGraph
from repro.mapping.base import Mapping
from repro.mapping.greedy import greedy_map
from repro.mapping.refine_wh import WHRefiner
from repro.sim.network import FlowSimulator
from repro.topology.machine import Machine
from repro.topology.routing import route, routes_bulk
from repro.topology.torus import Torus3D


class TestDegenerateTori:
    def test_flat_torus_routing(self):
        """dims with a size-1 axis: routes never touch that dimension."""
        t = Torus3D((1, 5, 5))
        r = route(t, 0, t.node_id(0, 3, 2))
        assert len(r) == t.hop_distance(0, t.node_id(0, 3, 2))
        dims = [(lid % 6) // 2 for lid in r]
        assert 0 not in dims

    def test_line_of_two(self):
        t = Torus3D((2, 1, 1))
        assert t.hop_distance(0, 1) == 1
        assert len(route(t, 0, 1)) == 1

    def test_single_node_torus(self):
        t = Torus3D((1, 1, 1))
        assert t.num_nodes == 1
        assert t.diameter == 0
        links, msg = routes_bulk(t, np.array([0]), np.array([0]))
        assert links.size == 0

    def test_flow_sim_on_flat_torus(self):
        t = Torus3D((1, 4, 4))
        sim = FlowSimulator(t)
        res = sim.simulate(
            np.array([0]), np.array([t.node_id(0, 2, 1)]), np.array([1e8])
        )
        assert res.makespan > 0


class TestDegenerateWorkloads:
    def test_empty_task_graph_mapping(self):
        t = Torus3D((2, 2, 2))
        machine = Machine(t, [0, 1, 2], procs_per_node=1)
        tg = TaskGraph.from_edges(3, [], [], [])
        gamma = greedy_map(tg, machine)
        assert np.unique(gamma).shape[0] == 3

    def test_single_task(self):
        t = Torus3D((2, 2, 2))
        machine = Machine(t, [5], procs_per_node=1)
        tg = TaskGraph.from_edges(1, [], [], [])
        gamma = greedy_map(tg, machine)
        assert gamma[0] == 5

    def test_more_capacity_than_tasks(self):
        """Free nodes may stay empty; mapping still valid."""
        t = Torus3D((3, 3, 1))
        machine = Machine(t, list(range(6)), procs_per_node=4)
        tg = TaskGraph.from_edges(
            3, [0, 1], [1, 2], [1.0, 1.0], loads=np.array([2.0, 2.0, 2.0])
        )
        gamma = greedy_map(tg, machine)
        used = np.zeros(t.num_nodes)
        np.add.at(used, gamma, tg.loads)
        assert np.all(used <= machine.node_capacities())

    def test_star_task_graph(self):
        """A hub-and-spoke pattern: hub ends up centrally placed."""
        t = Torus3D((5, 5, 1))
        machine = Machine(t, list(range(25)), procs_per_node=1)
        n = 9
        src = [0] * (n - 1)
        dst = list(range(1, n))
        tg = TaskGraph.from_edges(n, src, dst, [5.0] * (n - 1))
        gamma = greedy_map(tg, machine)
        hub = int(gamma[0])
        mean_spoke_dist = np.mean(
            [t.hop_distance(hub, int(gamma[i])) for i in range(1, n)]
        )
        assert mean_spoke_dist <= 2.0  # spokes hug the hub

    def test_wh_refiner_skips_unequal_weights(self):
        """Swaps between different-weight groups must be rejected."""
        t = Torus3D((3, 3, 1))
        machine = Machine(t, [0, 1, 2], procs_per_node=np.array([4, 2, 2]))
        tg = TaskGraph.from_edges(
            3, [0, 2], [2, 0], [10.0, 10.0], loads=np.array([4.0, 2.0, 2.0])
        )
        # group 0 (weight 4) on node 0; groups 1,2 on nodes 1,2.
        start = Mapping(np.array([0, 1, 2]), machine)
        refined = WHRefiner().refine(tg, start)
        # group 0 can only stay on node 0 (the only capacity-4 node).
        assert refined.gamma[0] == 0

    def test_self_communication_only(self):
        """A graph whose only edges are self-loops maps trivially."""
        t = Torus3D((2, 2, 1))
        machine = Machine(t, [0, 1], procs_per_node=1)
        tg = TaskGraph.from_edges(2, [0, 1], [0, 1], [5.0, 5.0])
        assert tg.num_messages == 0
        gamma = greedy_map(tg, machine)
        assert np.unique(gamma).shape[0] == 2


class TestNumericRobustness:
    def test_zero_volume_edges(self):
        g = CSRGraph.from_edges(3, [0, 1], [1, 2], [0.0, 0.0])
        assert g.total_edge_weight() == 0.0
        assert g.out_volume().sum() == 0.0

    def test_huge_volumes_no_overflow(self):
        tg = TaskGraph.from_edges(2, [0], [1], [1e15])
        t = Torus3D((2, 2, 1))
        machine = Machine(t, [0, 1], procs_per_node=1)
        sim = FlowSimulator(t)
        res = sim.simulate(np.array([0]), np.array([1]), np.array([1e15]))
        assert np.isfinite(res.makespan)
