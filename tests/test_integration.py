"""End-to-end integration tests exercising the full public pipeline."""

import numpy as np
import pytest

from repro import (
    AllocationSpec,
    Hypergraph,
    SparseAllocator,
    TaskGraph,
    evaluate_mapping,
    generate_matrix,
    get_mapper,
    get_partitioner,
    quick_map,
    torus_for_job,
)
from repro.mapping.pipeline import MAPPER_NAMES, prepare_groups


@pytest.fixture(scope="module")
def full_pipeline():
    """Matrix -> PATOH partition -> task graph -> machine, mid-sized."""
    matrix = generate_matrix("cage", 1200, seed=2)
    h = Hypergraph.from_matrix(matrix)
    procs, ppn = 128, 4
    part = get_partitioner("PATOH").partition(matrix, procs, seed=1, hypergraph=h).part
    loads = np.bincount(part, weights=h.loads, minlength=procs)
    tg = TaskGraph.from_comm_triplets(
        procs, h.comm_triplets(part, procs), loads=loads
    )
    nodes = procs // ppn
    torus = torus_for_job(nodes)
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=nodes, procs_per_node=ppn, fragmentation=0.4, seed=3)
    )
    groups = prepare_groups(tg, machine, seed=4)
    return tg, machine, groups


class TestHeadlineClaims:
    """The paper's qualitative results must hold on a mid-sized instance."""

    @pytest.fixture(scope="class")
    def report(self, full_pipeline):
        tg, machine, groups = full_pipeline
        out = {}
        for name in MAPPER_NAMES:
            res = get_mapper(name, seed=4).map(
                tg, machine, groups=None if name in ("DEF", "TMAP") else groups
            )
            out[name] = evaluate_mapping(tg, machine, res.fine_gamma)
        return out

    def test_ug_improves_wh_over_def(self, report):
        assert report["UG"].wh < report["DEF"].wh

    def test_uwh_at_least_as_good_as_ug_on_wh(self, report):
        assert report["UWH"].wh <= report["UG"].wh * 1.02

    def test_umc_best_mc_among_umpa(self, report):
        assert report["UMC"].mc <= min(
            report["UG"].mc, report["UWH"].mc, report["UMMC"].mc
        ) * 1.05

    def test_umc_improves_mc_over_def(self, report):
        assert report["UMC"].mc < report["DEF"].mc

    def test_ummc_not_worse_than_def_on_mmc(self, report):
        """The paper compares UMMC's MMC against DEF (24-37% better)."""
        assert report["UMMC"].mmc <= report["DEF"].mmc * 1.02

    def test_tmap_mc_never_worse_than_def(self, report):
        """The DEF-fallback guarantees MC(TMAP) <= MC(DEF)."""
        assert report["TMAP"].mc <= report["DEF"].mc * 1.0 + 1e-9


class TestQuickMap:
    def test_quick_map_runs(self):
        report = quick_map(rows=500, procs=32, seed=1)
        assert set(report) == set(MAPPER_NAMES)
        for metrics in report.values():
            assert metrics.th >= 0

    def test_quick_map_headline(self):
        report = quick_map(rows=800, procs=64, seed=0)
        assert report["UWH"].wh <= report["DEF"].wh * 1.05
