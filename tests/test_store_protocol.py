"""Store-protocol conformance suite: one contract, every backend.

:class:`~repro.api.store.ArtifactStore` is the formal protocol behind
the engine's artifact plane, and :func:`~repro.api.store.make_store`
is its single construction path.  This module runs the *same* battery
of contract tests over every backend the engine can hand out —

* ``DiskArtifactStore`` (durable ``.npz`` files),
* ``TieredArtifactStore`` with shared memory (where POSIX shm works),
* ``RemoteArtifactStore`` over a loopback
  :class:`~repro.dist.remote.ArtifactStoreServer`,
* the tiered composition layered over a remote,

so a backend cannot drift from the contract without a test naming it.
The battery pins: round-trips of every artifact value shape the engine
publishes, duplicate-save skipping (canonical ``save_skips`` counter),
``force=True`` re-publish, corruption tolerance (garbled bytes load as
*default*, never raise), namespace isolation under one key, delete /
contains coherence, orphan sweeping, and the canonical stats keys.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.api.store import (
    ArtifactStore,
    DiskArtifactStore,
    artifact_digest,
    make_store,
)
from repro.api.shm import TieredArtifactStore, shm_available
from repro.dist.remote import ArtifactStoreServer, RemoteArtifactStore
from repro.graph.task_graph import TaskGraph

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

BACKENDS = [
    "disk",
    pytest.param("shm", marks=needs_shm),
    "remote",
    pytest.param("tiered-remote", marks=needs_shm),
]


@pytest.fixture(scope="module")
def store_server(tmp_path_factory):
    """One loopback artifact-store server shared by the remote backends."""
    root = tmp_path_factory.mktemp("remote-store")
    server = ArtifactStoreServer(str(root)).start()
    yield server
    server.stop()


def _remote_address(server: ArtifactStoreServer) -> str:
    host, port = server.address
    return f"{host}:{port}"


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path, store_server):
    """A fresh store of each backend flavour, closed after the test."""
    kind = request.param
    root = str(tmp_path / "store")
    if kind == "disk":
        s = make_store(root, tier="disk")
        assert isinstance(s, DiskArtifactStore)
    elif kind == "shm":
        s = make_store(root, tier="shm")
        assert isinstance(s, TieredArtifactStore)
    elif kind == "remote":
        s = RemoteArtifactStore(_remote_address(store_server))
    else:  # tiered-remote
        s = make_store(root, tier="shm", remote=_remote_address(store_server))
        assert isinstance(s, TieredArtifactStore)
    yield s
    try:
        s.clear()
    except Exception:
        pass
    s.close()


def _sample_values():
    """Every artifact value shape the engine publishes through a store."""
    tg = TaskGraph.from_edges(
        4, np.array([0, 1, 2]), np.array([1, 2, 3]), np.array([1.0, 2.0, 3.0])
    )
    return {
        "array": np.arange(12, dtype=np.float64).reshape(3, 4),
        "int-array": np.arange(7, dtype=np.int32),
        "scalar": 42,
        "string": "hello-store",
        "tuple": (np.arange(3), 7, "mixed"),
        "dict": {"gamma": np.arange(5), "elapsed": 0.25, "note": "ok"},
        "grouping-pair": (np.arange(8, dtype=np.int64) // 2, tg),
    }


class TestConformance:
    """The battery every backend must pass."""

    def test_is_artifact_store(self, store):
        assert isinstance(store, ArtifactStore)
        assert store.tier in ("disk", "shm", "remote")

    def test_round_trip_value_shapes(self, store):
        for name, value in _sample_values().items():
            assert store.save("grouping", ("rt", name), value)
            got = store.load("grouping", ("rt", name))
            assert got is not None, f"round trip lost {name}"
            if isinstance(value, np.ndarray):
                np.testing.assert_array_equal(got, value)
            elif name == "grouping-pair":
                np.testing.assert_array_equal(got[0], value[0])
                assert got[1].num_tasks == value[1].num_tasks
            elif name == "dict":
                np.testing.assert_array_equal(got["gamma"], value["gamma"])
                assert got["elapsed"] == value["elapsed"]
            else:
                assert type(got) is type(value)

    def test_missing_key_returns_default(self, store):
        assert store.load("grouping", ("absent",)) is None
        assert store.load("grouping", ("absent",), default="fallback") == "fallback"
        assert not store.contains("grouping", ("absent",))

    def test_duplicate_save_skipped(self, store):
        key = ("dup", 1)
        assert store.save("grouping", key, np.arange(4))
        before = store.stats()["save_skips"]
        store.save("grouping", key, np.arange(4))
        assert store.stats()["save_skips"] == before + 1
        np.testing.assert_array_equal(store.load("grouping", key), np.arange(4))

    def test_force_resaves(self, store):
        key = ("force", 1)
        store.save("grouping", key, np.zeros(3))
        store.save("grouping", key, np.ones(3), force=True)
        np.testing.assert_array_equal(store.load("grouping", key), np.ones(3))

    def test_namespace_isolation(self, store):
        key = ("shared-key", 9)
        store.save("grouping", key, np.full(3, 1.0))
        store.save("route_table", key, np.full(3, 2.0))
        np.testing.assert_array_equal(store.load("grouping", key), np.full(3, 1.0))
        np.testing.assert_array_equal(store.load("route_table", key), np.full(3, 2.0))
        assert store.delete("grouping", key)
        assert store.load("grouping", key) is None
        np.testing.assert_array_equal(store.load("route_table", key), np.full(3, 2.0))

    def test_delete_and_contains(self, store):
        key = ("del", 3)
        assert not store.delete("grouping", key)
        store.save("grouping", key, "value")
        assert store.contains("grouping", key)
        assert store.delete("grouping", key)
        assert not store.contains("grouping", key)
        assert not store.delete("grouping", key)

    def test_stats_canonical_keys(self, store):
        store.save("grouping", ("stat", 1), np.arange(2))
        store.load("grouping", ("stat", 1))
        store.load("grouping", ("stat-miss",))
        stats = store.stats()
        for counter in ("saves", "save_skips", "loads", "load_hits"):
            assert counter in stats, f"missing canonical stats key {counter!r}"
            assert stats[counter] >= 0
        assert stats["saves"] >= 1
        assert stats["loads"] >= 2
        assert stats["load_hits"] >= 1

    def test_sweep_orphans_runs(self, store):
        assert store.sweep_orphans(min_age_s=0.0) >= 0


class TestCorruptionTolerance:
    """Garbled bytes load as *default* — recompute, never wrong data."""

    def test_disk_corruption(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path / "s"))
        store.save("grouping", ("c", 1), np.arange(4))
        digest = artifact_digest("grouping", ("c", 1))
        path = os.path.join(store.root, "grouping", f"{digest}.npz")
        with open(path, "wb") as fh:
            fh.write(b"this is not an npz archive")
        assert store.load("grouping", ("c", 1)) is None

    def test_remote_corruption(self, tmp_path):
        server = ArtifactStoreServer(str(tmp_path / "r")).start()
        try:
            client = RemoteArtifactStore(_remote_address(server))
            client.save("grouping", ("c", 2), np.arange(4))
            digest = artifact_digest("grouping", ("c", 2))
            (path,) = glob.glob(
                os.path.join(str(tmp_path / "r"), "grouping", f"{digest}.*")
            )
            with open(path, "wb") as fh:
                fh.write(b"garbage over the wire")
            assert client.load("grouping", ("c", 2)) is None
            client.close()
        finally:
            server.stop()

    def test_remote_server_gone_degrades(self, tmp_path):
        server = ArtifactStoreServer(str(tmp_path / "g")).start()
        client = RemoteArtifactStore(_remote_address(server))
        client.save("grouping", ("gone", 1), np.arange(3))
        server.stop()
        # runtime degradation: misses and falsy saves, never an exception
        assert client.load("grouping", ("gone", 1)) is None
        assert not client.save("grouping", ("gone", 2), np.arange(3))
        assert not client.contains("grouping", ("gone", 1))
        assert client.stats()["errors"] >= 1
        client.close()


class TestMakeStore:
    """``make_store`` is the single construction path."""

    def test_tier_validation(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store tier"):
            make_store(str(tmp_path / "x"), tier="tape")

    def test_disk_tier(self, tmp_path):
        store = make_store(str(tmp_path / "d"), tier="disk")
        assert isinstance(store, DiskArtifactStore)
        store.close()

    @needs_shm
    def test_auto_prefers_shm(self, tmp_path):
        store = make_store(str(tmp_path / "a"), tier="auto")
        assert isinstance(store, TieredArtifactStore)
        store.close()

    def test_remote_layering(self, tmp_path, store_server):
        store = make_store(
            str(tmp_path / "t"),
            tier="disk",
            remote=_remote_address(store_server),
        )
        assert isinstance(store, TieredArtifactStore)
        # a write replicates to the remote; a sibling root reads it back
        store.save("grouping", ("repl", 1), np.arange(5))
        sibling = make_store(
            str(tmp_path / "t2"),
            tier="disk",
            remote=_remote_address(store_server),
        )
        np.testing.assert_array_equal(
            sibling.load("grouping", ("repl", 1)), np.arange(5)
        )
        store.close()
        sibling.close()

    def test_remote_connection_failure_raises(self, tmp_path):
        with pytest.raises(ConnectionError):
            make_store(str(tmp_path / "f"), tier="disk", remote="127.0.0.1:1")
