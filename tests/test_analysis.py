"""Tests for NNLS regression and the statistics helpers."""

import numpy as np
import pytest

from repro.analysis.regression import (
    METRIC_COLUMNS,
    nnls_regression,
    pearson_matrix,
    standardize_columns,
)
from repro.analysis.stats import geo_mean_ratio, geometric_mean, normalize_to


class TestStats:
    def test_geometric_mean_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_drops_nan(self):
        assert geometric_mean([2.0, float("nan"), 8.0]) == pytest.approx(4.0)

    def test_normalize_to(self):
        out = normalize_to({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}
        with pytest.raises(ValueError):
            normalize_to({"a": 0.0}, "a")

    def test_geo_mean_ratio(self):
        assert geo_mean_ratio([2, 8], [1, 2]) == pytest.approx(
            np.sqrt(2 * 4)
        )
        with pytest.raises(ValueError):
            geo_mean_ratio([1], [1, 2])


class TestStandardize:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        v = rng.uniform(1, 5, size=(50, 4))
        s = standardize_columns(v)
        assert np.allclose(s.mean(axis=0), 0, atol=1e-12)
        assert np.allclose(s.std(axis=0), 1, atol=1e-12)

    def test_constant_column_zeroed(self):
        v = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        s = standardize_columns(v)
        assert np.all(s[:, 0] == 0)


class TestNnls:
    def test_recovers_planted_dependency(self):
        """time = 3*col0 + 1*col3 (standardized) -> NNLS finds those two."""
        rng = np.random.default_rng(1)
        v = rng.uniform(0, 10, size=(200, len(METRIC_COLUMNS)))
        vs = standardize_columns(v)
        t = 3.0 * vs[:, 0] + 1.0 * vs[:, 3] + rng.normal(0, 0.01, 200)
        fit = nnls_regression(v, t)
        nz = fit.nonzero(threshold=0.1)
        assert METRIC_COLUMNS[0] in nz
        assert METRIC_COLUMNS[3] in nz
        assert list(nz)[0] == METRIC_COLUMNS[0]  # largest coefficient first

    def test_nonnegative(self):
        rng = np.random.default_rng(2)
        v = rng.uniform(0, 1, size=(60, len(METRIC_COLUMNS)))
        t = rng.uniform(0, 1, 60)
        fit = nnls_regression(v, t)
        assert all(c >= 0 for c in fit.coefficients.values())

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            nnls_regression(np.zeros((5, 3)), np.zeros(5))
        with pytest.raises(ValueError):
            nnls_regression(np.zeros((5, 14)), np.zeros(4))
        with pytest.raises(ValueError):
            nnls_regression(np.zeros(14), np.zeros(14))

    def test_top(self):
        rng = np.random.default_rng(3)
        v = rng.uniform(0, 10, size=(100, len(METRIC_COLUMNS)))
        vs = standardize_columns(v)
        t = 2.0 * vs[:, 5]
        fit = nnls_regression(v, t)
        assert fit.top(1) == [METRIC_COLUMNS[5]]


class TestPearson:
    def test_correlated_pair_detected(self):
        rng = np.random.default_rng(4)
        base = rng.uniform(0, 1, 100)
        v = rng.uniform(0, 1, size=(100, len(METRIC_COLUMNS)))
        v[:, 9] = base  # AMC
        v[:, 13] = base * 2 + rng.normal(0, 0.01, 100)  # MNRM ~ AMC
        corr = pearson_matrix(v)
        assert corr[("AMC", "MNRM")] > 0.95

    def test_column_count_checked(self):
        with pytest.raises(ValueError):
            pearson_matrix(np.zeros((5, 3)))
