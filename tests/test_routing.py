"""Tests for static dimension-ordered routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.routing import (
    RouteTable,
    link_loads,
    route,
    route_lengths,
    route_table_key,
    routes_bulk,
)
from repro.topology.torus import Torus3D


def reference_routes_bulk(torus, src, dst):
    """Slow scalar re-implementation pinning routes_bulk's exact output.

    Dimension-major over messages, hop by hop — the order ``commTasks``
    bucket construction and every load accumulation depend on.
    """
    coords = torus.coords()
    cur = coords[np.asarray(src, dtype=np.int64)].copy()
    cv = coords[np.asarray(dst, dtype=np.int64)]
    nx, ny, _ = torus.dims
    links, msgs = [], []
    for dim in range(3):
        size = torus.dims[dim]
        for i in range(cur.shape[0]):
            fwd = (cv[i, dim] - cur[i, dim]) % size
            bwd = size - fwd
            if fwd == 0:
                continue
            steps, sign = (fwd, 1) if fwd <= bwd else (bwd, -1)
            c = cur[i].copy()
            for _ in range(steps):
                node = c[0] + nx * (c[1] + ny * c[2])
                links.append(int(node * 6 + dim * 2 + (0 if sign == 1 else 1)))
                msgs.append(i)
                c[dim] = (c[dim] + sign) % size
        cur[:, dim] = cv[:, dim]
    return links, msgs


@pytest.fixture(scope="module")
def torus():
    return Torus3D((4, 3, 5))


class TestScalarRoute:
    def test_route_length_equals_hops(self, torus):
        rng = np.random.default_rng(1)
        for _ in range(40):
            u, v = (int(x) for x in rng.integers(0, torus.num_nodes, size=2))
            assert len(route(torus, u, v)) == torus.hop_distance(u, v)

    def test_route_chains_endpoints(self, torus):
        u, v = 0, torus.node_id(2, 2, 3)
        r = np.array(route(torus, u, v))
        src, dst = torus.link_endpoints(r)
        assert src[0] == u and dst[-1] == v
        assert np.array_equal(src[1:], dst[:-1])

    def test_self_route_empty(self, torus):
        assert route(torus, 5, 5) == []

    def test_dimension_order_x_first(self):
        t = Torus3D((4, 4, 4))
        r = route(t, t.node_id(0, 0, 0), t.node_id(2, 2, 0))
        dims = [(lid % 6) // 2 for lid in r]
        assert dims == sorted(dims), "X hops must precede Y hops"

    def test_shorter_wrap_direction(self):
        t = Torus3D((8, 2, 2))
        r = route(t, t.node_id(0, 0, 0), t.node_id(7, 0, 0))
        assert len(r) == 1
        direction = r[0] % 2
        assert direction == 1  # negative (wrap) direction

    def test_tie_breaks_positive(self):
        t = Torus3D((4, 2, 2))
        # distance 2 both ways; deterministic choice = + direction.
        r = route(t, t.node_id(0, 0, 0), t.node_id(2, 0, 0))
        assert all(lid % 2 == 0 for lid in r)


class TestBulk:
    def test_bulk_matches_scalar(self, torus):
        rng = np.random.default_rng(2)
        src = rng.integers(0, torus.num_nodes, size=30)
        dst = rng.integers(0, torus.num_nodes, size=30)
        links, msg = routes_bulk(torus, src, dst)
        for i in range(30):
            mine = links[msg == i]
            assert sorted(mine.tolist()) == sorted(route(torus, int(src[i]), int(dst[i])))

    def test_bulk_empty(self, torus):
        links, msg = routes_bulk(torus, np.array([], dtype=int), np.array([], dtype=int))
        assert links.size == 0 and msg.size == 0

    def test_bulk_length_mismatch(self, torus):
        with pytest.raises(ValueError):
            routes_bulk(torus, np.array([0]), np.array([0, 1]))

    def test_route_lengths(self, torus):
        src = np.array([0, 1])
        dst = np.array([5, 1])
        assert np.array_equal(route_lengths(torus, src, dst), torus.hop_distance(src, dst))

    def test_bulk_exact_output_order(self, torus):
        """routes_bulk output (content AND order) matches the reference.

        Pins the dimension-major traversal order after the node-id
        reconstruction micro-fix (index-assign instead of three
        ``np.where`` full-array builds).
        """
        rng = np.random.default_rng(5)
        src = rng.integers(0, torus.num_nodes, size=40)
        dst = rng.integers(0, torus.num_nodes, size=40)
        links, msg = routes_bulk(torus, src, dst)
        ref_links, ref_msgs = reference_routes_bulk(torus, src, dst)
        assert links.tolist() == ref_links
        assert msg.tolist() == ref_msgs


class TestRouteTable:
    def test_csr_matches_bulk(self, torus):
        rng = np.random.default_rng(6)
        src = rng.integers(0, torus.num_nodes, size=25)
        dst = rng.integers(0, torus.num_nodes, size=25)
        table = RouteTable.build(torus, src, dst)
        assert table.num_pairs == 25
        for i in range(25):
            assert table.links_of(i).tolist() == route(torus, int(src[i]), int(dst[i]))

    def test_intra_node_pairs_have_empty_segments(self, torus):
        table = RouteTable.build(torus, np.array([3, 4]), np.array([3, 9]))
        assert table.links_of(0).size == 0
        assert table.links_of(1).size == torus.hop_distance(4, 9)

    def test_accumulate_matches_link_loads(self, torus):
        rng = np.random.default_rng(7)
        src = rng.integers(0, torus.num_nodes, size=30)
        dst = rng.integers(0, torus.num_nodes, size=30)
        vol = rng.integers(1, 7, size=30).astype(np.float64)
        table = RouteTable.build(torus, src, dst)
        msgs, vols = table.accumulate(vol)
        assert np.array_equal(vols, link_loads(torus, src, dst, vol))
        assert np.array_equal(msgs, link_loads(torus, src, dst, np.ones(30)))

    def test_gather_concatenates_requested_segments(self, torus):
        rng = np.random.default_rng(8)
        src = rng.integers(0, torus.num_nodes, size=12)
        dst = rng.integers(0, torus.num_nodes, size=12)
        table = RouteTable.build(torus, src, dst)
        pick = np.array([7, 2, 9])
        links, counts = table.gather(pick)
        expect = np.concatenate([table.links_of(int(p)) for p in pick])
        assert np.array_equal(links, expect)
        assert np.array_equal(counts, table.counts()[pick])

    def test_copy_is_independent(self, torus):
        table = RouteTable.build(torus, np.array([0, 1]), np.array([5, 8]))
        clone = table.copy()
        clone.links[:] = -1
        assert not np.array_equal(table.links, clone.links)

    def test_key_is_content_derived(self, torus):
        src = np.array([0, 1, 2])
        dst = np.array([5, 8, 2])
        assert route_table_key(torus, src, dst) == route_table_key(
            torus, src.copy(), dst.copy()
        )
        assert route_table_key(torus, src, dst) != route_table_key(torus, dst, src)
        other = Torus3D((5, 3, 4))
        assert route_table_key(torus, src, dst) != route_table_key(other, src, dst)


class TestLinkLoads:
    def test_total_load_is_weighted_hops(self, torus):
        rng = np.random.default_rng(3)
        src = rng.integers(0, torus.num_nodes, size=50)
        dst = rng.integers(0, torus.num_nodes, size=50)
        vol = rng.uniform(1, 5, size=50)
        loads = link_loads(torus, src, dst, vol)
        hops = torus.hop_distance(src, dst)
        assert loads.sum() == pytest.approx(float((hops * vol).sum()))

    def test_loads_only_on_valid_links(self, torus):
        rng = np.random.default_rng(4)
        src = rng.integers(0, torus.num_nodes, size=20)
        dst = rng.integers(0, torus.num_nodes, size=20)
        loads = link_loads(torus, src, dst, np.ones(20))
        assert not loads[~torus.link_valid()].any()


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 59), st.integers(0, 59))
def test_property_route_is_shortest_path(u, v):
    t = Torus3D((4, 3, 5))
    r = route(t, u, v)
    assert len(r) == t.hop_distance(u, v)
    if r:
        src, dst = t.link_endpoints(np.array(r))
        assert src[0] == u and dst[-1] == v
        # every step is one hop
        assert np.all(t.hop_distance(src, dst) == 1)
