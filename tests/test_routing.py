"""Tests for static dimension-ordered routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.routing import link_loads, route, route_lengths, routes_bulk
from repro.topology.torus import Torus3D


@pytest.fixture(scope="module")
def torus():
    return Torus3D((4, 3, 5))


class TestScalarRoute:
    def test_route_length_equals_hops(self, torus):
        rng = np.random.default_rng(1)
        for _ in range(40):
            u, v = (int(x) for x in rng.integers(0, torus.num_nodes, size=2))
            assert len(route(torus, u, v)) == torus.hop_distance(u, v)

    def test_route_chains_endpoints(self, torus):
        u, v = 0, torus.node_id(2, 2, 3)
        r = np.array(route(torus, u, v))
        src, dst = torus.link_endpoints(r)
        assert src[0] == u and dst[-1] == v
        assert np.array_equal(src[1:], dst[:-1])

    def test_self_route_empty(self, torus):
        assert route(torus, 5, 5) == []

    def test_dimension_order_x_first(self):
        t = Torus3D((4, 4, 4))
        r = route(t, t.node_id(0, 0, 0), t.node_id(2, 2, 0))
        dims = [(lid % 6) // 2 for lid in r]
        assert dims == sorted(dims), "X hops must precede Y hops"

    def test_shorter_wrap_direction(self):
        t = Torus3D((8, 2, 2))
        r = route(t, t.node_id(0, 0, 0), t.node_id(7, 0, 0))
        assert len(r) == 1
        direction = r[0] % 2
        assert direction == 1  # negative (wrap) direction

    def test_tie_breaks_positive(self):
        t = Torus3D((4, 2, 2))
        # distance 2 both ways; deterministic choice = + direction.
        r = route(t, t.node_id(0, 0, 0), t.node_id(2, 0, 0))
        assert all(lid % 2 == 0 for lid in r)


class TestBulk:
    def test_bulk_matches_scalar(self, torus):
        rng = np.random.default_rng(2)
        src = rng.integers(0, torus.num_nodes, size=30)
        dst = rng.integers(0, torus.num_nodes, size=30)
        links, msg = routes_bulk(torus, src, dst)
        for i in range(30):
            mine = links[msg == i]
            assert sorted(mine.tolist()) == sorted(route(torus, int(src[i]), int(dst[i])))

    def test_bulk_empty(self, torus):
        links, msg = routes_bulk(torus, np.array([], dtype=int), np.array([], dtype=int))
        assert links.size == 0 and msg.size == 0

    def test_bulk_length_mismatch(self, torus):
        with pytest.raises(ValueError):
            routes_bulk(torus, np.array([0]), np.array([0, 1]))

    def test_route_lengths(self, torus):
        src = np.array([0, 1])
        dst = np.array([5, 1])
        assert np.array_equal(route_lengths(torus, src, dst), torus.hop_distance(src, dst))


class TestLinkLoads:
    def test_total_load_is_weighted_hops(self, torus):
        rng = np.random.default_rng(3)
        src = rng.integers(0, torus.num_nodes, size=50)
        dst = rng.integers(0, torus.num_nodes, size=50)
        vol = rng.uniform(1, 5, size=50)
        loads = link_loads(torus, src, dst, vol)
        hops = torus.hop_distance(src, dst)
        assert loads.sum() == pytest.approx(float((hops * vol).sum()))

    def test_loads_only_on_valid_links(self, torus):
        rng = np.random.default_rng(4)
        src = rng.integers(0, torus.num_nodes, size=20)
        dst = rng.integers(0, torus.num_nodes, size=20)
        loads = link_loads(torus, src, dst, np.ones(20))
        assert not loads[~torus.link_valid()].any()


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 59), st.integers(0, 59))
def test_property_route_is_shortest_path(u, v):
    t = Torus3D((4, 3, 5))
    r = route(t, u, v)
    assert len(r) == t.hop_distance(u, v)
    if r:
        src, dst = t.link_endpoints(np.array(r))
        assert src[0] == u and dst[-1] == v
        # every step is one hop
        assert np.all(t.hop_distance(src, dst) == 1)
