"""Tests for the incremental k-way hypergraph refinement state.

The KWayState maintains σ/λ/TV/sendvol/cnt/TM/MSM incrementally; every
test here cross-checks against a from-scratch rebuild (state.validate())
or a brute-force oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import cage_like
from repro.hypergraph.model import Hypergraph
from repro.metrics.partition import evaluate_partition
from repro.partition.kway_refine import OBJECTIVES, KWayState, refine_kway


@pytest.fixture(scope="module")
def small_h():
    return Hypergraph.from_matrix(cage_like(120, seed=0))


def random_part(n, k, seed):
    return np.random.default_rng(seed).integers(0, k, size=n)


class TestStateConstruction:
    def test_initial_state_matches_metrics(self, small_h):
        k = 4
        part = random_part(small_h.num_vertices, k, 1)
        state = KWayState(small_h, part, k)
        pm = evaluate_partition(small_h, part, k)
        assert state.tv == pytest.approx(pm.tv)
        assert state.tm == pm.tm
        assert state.msv == pytest.approx(pm.msv)
        assert state.msm == pm.msm

    def test_rejects_non_square(self):
        h = Hypergraph(3, np.array([0, 2]), np.array([0, 1], dtype=np.int32))
        with pytest.raises(ValueError):
            KWayState(h, np.zeros(3, dtype=np.int64), 2)

    def test_rejects_missing_diagonal(self):
        # 2 vertices, 2 nets, net 1 does NOT pin vertex 1.
        h = Hypergraph(2, np.array([0, 2, 3]), np.array([0, 1, 0], dtype=np.int32))
        with pytest.raises(ValueError):
            KWayState(h, np.zeros(2, dtype=np.int64), 2)


class TestMoves:
    def test_apply_move_keeps_invariants(self, small_h):
        k = 3
        part = random_part(small_h.num_vertices, k, 2)
        state = KWayState(small_h, part, k)
        rng = np.random.default_rng(3)
        for _ in range(30):
            v = int(rng.integers(0, small_h.num_vertices))
            b = int(rng.integers(0, k))
            state.apply_move(v, b)
        assert state.validate()

    def test_eval_matches_apply(self, small_h):
        k = 4
        part = random_part(small_h.num_vertices, k, 4)
        state = KWayState(small_h, part, k)
        rng = np.random.default_rng(5)
        for _ in range(25):
            v = int(rng.integers(0, small_h.num_vertices))
            b = int(rng.integers(0, k))
            if b == state.part[v]:
                continue
            d_tv, d_msv, d_tm, d_msm = state.eval_move(v, b)
            tv0, msv0, tm0, msm0 = state.tv, state.msv, state.tm, state.msm
            state.apply_move(v, b)
            assert state.tv == pytest.approx(tv0 + d_tv)
            assert state.msv == pytest.approx(msv0 + d_msv)
            assert state.tm == tm0 + d_tm
            assert state.msm == msm0 + d_msm

    def test_noop_move(self, small_h):
        state = KWayState(small_h, random_part(small_h.num_vertices, 2, 0), 2)
        assert state.eval_move(0, int(state.part[0])) == (0.0, 0.0, 0, 0)

    def test_boundary_detection(self, small_h):
        part = np.zeros(small_h.num_vertices, dtype=np.int64)
        state = KWayState(small_h, part, 2)
        assert not state.is_boundary(0)  # single part: no cut nets
        part2 = part.copy()
        part2[0] = 1
        state2 = KWayState(small_h, part2, 2)
        assert state2.is_boundary(0)

    def test_candidate_parts_exclude_own(self, small_h):
        part = random_part(small_h.num_vertices, 4, 6)
        state = KWayState(small_h, part, 4)
        for v in range(0, 40, 7):
            assert int(state.part[v]) not in state.candidate_parts(v)


class TestRefine:
    @pytest.mark.parametrize("objective", sorted(OBJECTIVES))
    def test_refine_improves_primary(self, small_h, objective):
        k = 4
        part = random_part(small_h.num_vertices, k, 7)
        before = KWayState(small_h, part, k).metrics()
        refined = refine_kway(small_h, part, k, objective, passes=2, tolerance=0.4)
        after = KWayState(small_h, refined, k).metrics()
        primary = {"tv": "TV", "msv_tv": "MSV", "msm_tm_tv": "MSM", "tm_tv": "TM"}[
            objective
        ]
        assert after[primary] <= before[primary]

    def test_refine_respects_balance(self, small_h):
        k = 4
        part = random_part(small_h.num_vertices, k, 8)
        tol = 0.10
        refined = refine_kway(small_h, part, k, "tv", passes=2, tolerance=tol)
        loads = np.bincount(refined, weights=small_h.loads, minlength=k)
        limit0 = np.bincount(part, weights=small_h.loads, minlength=k).max()
        target = small_h.loads.sum() / k
        # no part grows beyond target*(1+tol) unless it started above it
        assert loads.max() <= max(target * (1 + tol) + small_h.loads.max(), limit0)

    def test_unknown_objective(self, small_h):
        with pytest.raises(ValueError):
            refine_kway(small_h, np.zeros(small_h.num_vertices, dtype=np.int64), 2, "xx")


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 5))
def test_property_incremental_state_exact(seed, k):
    """Random move sequences never desynchronize the incremental state."""
    h = Hypergraph.from_matrix(cage_like(60, seed=seed % 7))
    part = np.random.default_rng(seed).integers(0, k, size=60)
    state = KWayState(h, part, k)
    rng = np.random.default_rng(seed + 1)
    for _ in range(15):
        v = int(rng.integers(0, 60))
        b = int(rng.integers(0, k))
        state.apply_move(v, b)
    assert state.validate()
