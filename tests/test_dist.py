"""Multi-host plan sharding: router policy and coordinator semantics.

Pins the distributed-dispatch contracts of the sharding tentpole:

* :class:`~repro.dist.router.ShardRouter` placement is deterministic,
  host-order independent, colocates every node of one workload
  fingerprint, pins shared-artifact producers (groupings and DEF
  baselines) against stealing, and reroutes a dead host's workloads
  consistently onto survivors;
* a sharded ``map_batch`` over two loopback
  :class:`~repro.dist.host.HostServer` processes is **byte-identical**
  to the single-host serial run (compared by
  ``MapResponse.fingerprint()``, which covers the mappings and nothing
  timing-dependent);
* shared groupings are computed **exactly once on exactly one host** —
  the remote store replicates them so consumers anywhere read, never
  recompute;
* killing a host mid-batch with ``on_error="partial"`` yields partial
  results: structured :class:`~repro.api.fault.PlanError` failures
  (``host_lost`` / ``upstream``) only for the poisoned workload, while
  every other request completes byte-identically;
* with a retry budget the coordinator **reroutes** the lost work onto
  the survivor and the whole batch completes unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import MappingService, MapRequest
from repro.api.executor import _collect
from repro.api.fault import RetryPolicy
from repro.api.plan import build_plan
from repro.dist import ArtifactStoreServer, HostServer, ShardRouter
from repro.dist.coordinator import run_sharded
from repro.graph.task_graph import TaskGraph
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.torus import Torus3D


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def machine():
    torus = Torus3D((4, 4, 2))
    return SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=8, procs_per_node=3, fragmentation=0.3, seed=4)
    )


def _task_graph(seed: int, n: int = 24, m: int = 160) -> TaskGraph:
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    return TaskGraph.from_edges(n, src[keep], dst[keep], rng.uniform(1, 5, keep.sum()))


@pytest.fixture(scope="module")
def requests(machine):
    """Four distinct workload fingerprints (four task graphs, one machine)."""
    return [
        MapRequest(
            task_graph=_task_graph(seed),
            machine=machine,
            algorithms=("UG",),
            seed=0,
            tag=f"req-{seed}",
        )
        for seed in range(4)
    ]


@pytest.fixture(scope="module")
def serial_responses(requests):
    return MappingService().map_batch(requests)


def _fingerprints(responses):
    return [r.fingerprint() for r in responses]


# ---------------------------------------------------------------------------
# Loopback cluster: one store server + two host servers
# ---------------------------------------------------------------------------


@pytest.fixture()
def cluster(tmp_path):
    """A fresh two-host loopback cluster per test (kill tests consume hosts)."""
    store_srv = ArtifactStoreServer(str(tmp_path / "store")).start()
    remote = "%s:%d" % store_srv.address
    hosts = []
    for i in range(2):
        host = HostServer(
            store_remote=remote,
            store_dir=str(tmp_path / f"host{i}"),
            store_tier="disk",
            capacity=1,
        )
        host.start()
        hosts.append(host)
    addresses = ["%s:%d" % h.address for h in hosts]
    yield store_srv, hosts, addresses
    for h in hosts:
        h.stop()
    store_srv.stop()


# ---------------------------------------------------------------------------
# ShardRouter unit tests
# ---------------------------------------------------------------------------


class TestShardRouter:
    HOSTS = ("10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000")

    def test_validation(self, requests):
        plan = build_plan(requests)
        with pytest.raises(ValueError, match="at least one host"):
            ShardRouter(plan, [])
        with pytest.raises(ValueError, match="duplicate host"):
            ShardRouter(plan, ["a:1", "a:1"])

    def test_deterministic_and_order_independent(self, requests):
        plan = build_plan(requests)
        a = ShardRouter(plan, self.HOSTS)
        b = ShardRouter(plan, tuple(reversed(self.HOSTS)))
        assert a.assignment == b.assignment

    def test_workload_colocation(self, requests):
        plan = build_plan(requests)
        router = ShardRouter(plan, self.HOSTS)
        by_workload = {}
        for node in plan.nodes:
            workload = plan.workload_of(node.index)
            by_workload.setdefault(workload, set()).add(router.host_of(node.index))
        for workload, hosts in by_workload.items():
            assert len(hosts) == 1, f"workload {workload} split across {hosts}"

    def test_groupings_and_baselines_pinned(self, machine):
        reqs = [
            MapRequest(
                task_graph=_task_graph(7),
                machine=machine,
                algorithms=("DEF", "TMAP"),
                seed=0,
            )
        ]
        plan = build_plan(reqs)
        assert plan.baseline_producers, "DEF should seed a def_baseline producer"
        router = ShardRouter(plan, self.HOSTS)
        for node in plan.nodes:
            if node.kind == "grouping":
                assert router.pinned(node.index)
        for index in plan.baseline_producers.values():
            assert router.pinned(index)

    def test_steal_respects_threshold_and_pinning(self, requests):
        plan = build_plan(requests)
        router = ShardRouter(plan, ("a:1", "b:1"), steal_threshold=2)
        algo = [n.index for n in plan.nodes if n.kind == "algo"]
        grouping = [n.index for n in plan.nodes if n.kind == "grouping"]
        # backlog at threshold: nothing to steal
        assert router.steal("b:1", {"a:1": algo[:2], "b:1": []}) is None
        # deep backlog: the newest unpinned node moves to the idle host
        stolen = router.steal("b:1", {"a:1": list(algo), "b:1": []})
        assert stolen == algo[-1]
        assert router.host_of(stolen) == "b:1"
        assert router.steals == 1
        # an all-pinned backlog yields nothing, however deep
        assert router.steal("b:1", {"a:1": list(grouping), "b:1": []}) is None

    def test_reroute_moves_workload_to_survivor(self, requests):
        plan = build_plan(requests)
        router = ShardRouter(plan, ("a:1", "b:1"))
        victim = router.host_of(plan.nodes[0].index)
        survivor = "b:1" if victim == "a:1" else "a:1"
        moved = router.reroute(plan.nodes[0].index, [survivor])
        assert moved == survivor
        assert router.host_of(plan.nodes[0].index) == survivor
        assert router.reroutes == 1
        with pytest.raises(ValueError, match="no live hosts"):
            router.reroute(plan.nodes[0].index, [])

    def test_stats_shape(self, requests):
        plan = build_plan(requests)
        router = ShardRouter(plan, self.HOSTS)
        stats = router.stats()
        assert stats["hosts"] == 3
        assert stats["nodes"] == len(plan.nodes)
        assert sum(stats["shard_sizes"].values()) == len(plan.nodes)
        assert stats["steals"] == 0 and stats["reroutes"] == 0


# ---------------------------------------------------------------------------
# Two-host integration
# ---------------------------------------------------------------------------


class TestShardedExecution:
    def test_byte_identical_to_serial(self, cluster, requests, serial_responses):
        store_srv, hosts, addresses = cluster
        remote = "%s:%d" % store_srv.address
        sharded = MappingService().map_batch(
            requests, hosts=addresses, store_remote=remote
        )
        assert all(r.error is None for r in sharded)
        assert _fingerprints(sharded) == _fingerprints(serial_responses)
        # both hosts did real work, and nothing ran twice
        plan = build_plan(requests)
        nodes_run = sum(h.stats()["nodes_run"] for h in hosts)
        assert nodes_run == len(plan.nodes)

    def test_groupings_computed_exactly_once(self, cluster, requests):
        store_srv, hosts, addresses = cluster
        remote = "%s:%d" % store_srv.address
        responses = MappingService().map_batch(
            requests, hosts=addresses, store_remote=remote
        )
        assert all(r.error is None for r in responses)
        plan = build_plan(requests)
        grouping_nodes = [n for n in plan.nodes if n.kind == "grouping"]
        per_host = [h.stats()["groupings_computed"] for h in hosts]
        assert sum(per_host) == len(grouping_nodes)
        # each workload's grouping ran on exactly the host the router
        # pinned it to — consumers found it without recomputing
        router = ShardRouter(plan, addresses)
        pinned_hosts = {router.host_of(n.index) for n in grouping_nodes}
        live_hosts = {
            a for a, h in zip(addresses, hosts) if h.stats()["groupings_computed"]
        }
        assert live_hosts <= pinned_hosts

    def test_def_baseline_stays_host_local(self, cluster, machine):
        """DEF seeds the baseline TMAP consumes; both stay on one host."""
        store_srv, hosts, addresses = cluster
        remote = "%s:%d" % store_srv.address
        reqs = [
            MapRequest(
                task_graph=_task_graph(seed),
                machine=machine,
                algorithms=("DEF", "TMAP"),
                seed=0,
                tag=f"def-{seed}",
            )
            for seed in range(2)
        ]
        plan = build_plan(reqs)
        assert plan.baseline_producers
        router = ShardRouter(plan, addresses)
        for (workload_key, producer) in plan.baseline_producers.items():
            producer_host = router.host_of(producer)
            consumers = [
                n.index
                for n in plan.nodes
                if plan.workload_of(n.index) == plan.workload_of(producer)
            ]
            assert all(router.host_of(i) == producer_host for i in consumers)
        sharded = MappingService().map_batch(
            reqs, hosts=addresses, store_remote=remote
        )
        assert all(r.error is None for r in sharded)
        assert _fingerprints(sharded) == _fingerprints(
            MappingService().map_batch(reqs)
        )
        # the baseline producers ran exactly once: every plan node ran
        # on exactly one host, none re-ran
        assert sum(h.stats()["nodes_run"] for h in hosts) == len(plan.nodes)

    def test_work_stealing_rebalances_single_workload(self, cluster, machine):
        """One workload pins everything to one host; the other steals."""
        store_srv, hosts, addresses = cluster
        remote = "%s:%d" % store_srv.address
        tg = _task_graph(11)
        reqs = [
            MapRequest(
                task_graph=tg, machine=machine, algorithms=("UG",), seed=s, tag=s
            )
            for s in range(6)
        ]
        plan = build_plan(reqs)
        service = MappingService()
        stats = {}
        outcomes = run_sharded(
            plan,
            service,
            addresses,
            store_remote=remote,
            steal_threshold=1,
            stats_out=stats,
        )
        responses = _collect(plan, outcomes)
        assert all(r.error is None for r in responses)
        assert stats["router"]["steals"] >= 1
        assert _fingerprints(responses) == _fingerprints(
            MappingService().map_batch(reqs)
        )

    def test_host_kill_yields_partial_results(
        self, cluster, requests, serial_responses
    ):
        store_srv, hosts, addresses = cluster
        remote = "%s:%d" % store_srv.address
        plan = build_plan(requests)
        router = ShardRouter(plan, addresses)
        # poison the first request; its nodes are pinned on one host
        poison_tag = requests[0].tag
        victim_address = router.host_of(0)
        victim = hosts[addresses.index(victim_address)]
        victim.arm_kill(poison_tag)
        responses = MappingService().map_batch(
            requests,
            hosts=addresses,
            store_remote=remote,
            on_error="partial",
            steal_threshold=100,  # keep placement exactly as predicted
        )
        failed = [r for r in responses if r.error is not None]
        assert [r.tag for r in failed] == [poison_tag]
        assert failed[0].error.kind in ("host_lost", "upstream")
        # every other request survived the host loss byte-identically
        for got, want in zip(responses[1:], serial_responses[1:]):
            assert got.error is None
            assert got.fingerprint() == want.fingerprint()

    def test_retry_reroutes_onto_survivor(self, cluster, requests, serial_responses):
        store_srv, hosts, addresses = cluster
        remote = "%s:%d" % store_srv.address
        plan = build_plan(requests)
        router = ShardRouter(plan, addresses)
        poison_tag = requests[0].tag
        victim_address = router.host_of(0)
        victim = hosts[addresses.index(victim_address)]
        victim.arm_kill(poison_tag)
        service = MappingService()
        stats = {}
        outcomes = run_sharded(
            plan,
            service,
            addresses,
            store_remote=remote,
            retry=RetryPolicy(max_attempts=3, backoff=0.01),
            steal_threshold=100,
            stats_out=stats,
        )
        responses = _collect(plan, outcomes)
        assert all(r.error is None for r in responses)
        assert stats["router"]["reroutes"] >= 1
        assert stats["hosts_lost"] == [victim_address]
        assert _fingerprints(responses) == _fingerprints(serial_responses)

    def test_all_hosts_dead_drains_locally(self, cluster, requests, serial_responses):
        """Zero survivors: the coordinator finishes the batch in-process."""
        store_srv, hosts, addresses = cluster
        for h in hosts:
            h.stop()
        responses = MappingService().map_batch(
            requests,
            hosts=addresses,
            store_remote="%s:%d" % store_srv.address,
            retry=RetryPolicy(max_attempts=2, backoff=0.01),
        )
        assert all(r.error is None for r in responses)
        assert _fingerprints(responses) == _fingerprints(serial_responses)
