"""Tests for the registry-driven mapping API (repro.api).

Covers the MapperSpec registry and its error paths, MapRequest
normalization, MappingService dispatch (including bit-identical parity
with the legacy TwoPhaseMapper facade), map_batch grouping reuse, the
ArtifactCache, and the ``python -m repro.api`` CLI.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    ArtifactCache,
    MapperRegistrationError,
    MapperSpec,
    MapRequest,
    MappingService,
    UnknownMapperError,
    fingerprint_arrays,
    get_spec,
    machine_key,
    register_mapper,
    registered_mappers,
    task_graph_key,
    unregister_mapper,
)
from repro.api.stages import PLACEMENT_STAGES
from repro.graph.task_graph import TaskGraph
from repro.mapping.pipeline import (
    EXTENDED_MAPPER_NAMES,
    MAPPER_NAMES,
    TwoPhaseMapper,
    get_mapper,
)
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.torus import Torus3D


@pytest.fixture()
def setup():
    """24-rank task graph on 8 nodes × 3 processors (4x4x2 torus)."""
    torus = Torus3D((4, 4, 2))
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=8, procs_per_node=3, fragmentation=0.3, seed=4)
    )
    rng = np.random.default_rng(7)
    n, m = 24, 160
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], rng.uniform(1, 5, keep.sum()))
    return tg, machine


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_mappers()
        for name in EXTENDED_MAPPER_NAMES:
            assert name in names

    def test_get_spec_case_insensitive(self):
        assert get_spec("uwh").name == "UWH"
        assert get_spec("UWH") is get_spec("uwh")

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(UnknownMapperError):
            get_spec("NOPE")
        with pytest.raises(ValueError):  # UnknownMapperError is a ValueError
            get_spec("NOPE")

    def test_specs_are_stage_compositions(self):
        assert get_spec("UWH").stage_names() == ("partition", "greedy", "wh")
        assert get_spec("UMMC").stage_names() == ("partition", "greedy", "mmc")
        assert get_spec("DEF").stage_names() == ("blocked", "consecutive")
        assert get_spec("UWHF").stage_names() == (
            "partition",
            "greedy",
            "wh",
            "fine_wh",
        )

    def test_duplicate_registration_rejected(self):
        with pytest.raises(MapperRegistrationError):
            register_mapper(MapperSpec(name="UWH"))

        @register_mapper("DUPTEST")
        def place_a(ctx):  # pragma: no cover - never executed
            return ctx.machine.alloc_nodes.copy()

        try:
            with pytest.raises(MapperRegistrationError):

                @register_mapper("DUPTEST")
                def place_b(ctx):  # pragma: no cover - never executed
                    return ctx.machine.alloc_nodes.copy()

        finally:
            unregister_mapper("DUPTEST")
            assert "custom:duptest" not in PLACEMENT_STAGES

    def test_explicit_spec_name_normalized(self):
        """Lower-case spec names are upper-cased on registration."""
        register_mapper(MapperSpec(name="casetest"))
        try:
            assert "CASETEST" in registered_mappers()
            assert get_spec("casetest").name == "CASETEST"
        finally:
            unregister_mapper("CASETEST")

    def test_failed_registration_leaves_no_stage_behind(self):
        """A bad decorator call must not block the corrected retry."""
        with pytest.raises(MapperRegistrationError):

            @register_mapper("RETRYTEST", refine=("bogus-refiner",))
            def bad(ctx):  # pragma: no cover - never executed
                return ctx.machine.alloc_nodes.copy()

        assert "custom:retrytest" not in PLACEMENT_STAGES

        @register_mapper("RETRYTEST", refine=("wh",))
        def good(ctx):  # pragma: no cover - never executed
            return ctx.machine.alloc_nodes.copy()

        try:
            assert get_spec("RETRYTEST").refine == ("wh",)
        finally:
            unregister_mapper("RETRYTEST")
            assert "custom:retrytest" not in PLACEMENT_STAGES

    def test_spec_validates_stage_names(self):
        with pytest.raises(MapperRegistrationError):
            MapperSpec(name="BAD", placement="no-such-stage")
        with pytest.raises(MapperRegistrationError):
            MapperSpec(name="BAD", refine=("no-such-refiner",))
        with pytest.raises(MapperRegistrationError):
            MapperSpec(name="BAD", coarse_view="sideways")

    def test_decorator_registers_runnable_mapper(self, setup):
        tg, machine = setup

        @register_mapper("REVTEST", refine=("wh",))
        def reverse_placement(ctx):
            """Groups on allocation nodes in reverse order."""
            return ctx.machine.alloc_nodes[::-1].copy()

        try:
            spec = get_spec("revtest")
            assert spec.refine == ("wh",)
            assert spec.description.startswith("Groups on allocation")
            res = get_mapper("REVTEST", seed=1).map(tg, machine)
            assert machine.alloc_mask()[res.fine_gamma].all()
            used = np.bincount(res.fine_gamma, minlength=machine.torus.num_nodes)
            assert np.all(used <= machine.node_capacities())
        finally:
            unregister_mapper("REVTEST")
            assert "custom:revtest" not in PLACEMENT_STAGES


class TestMapRequest:
    def test_string_algorithms_normalized(self, setup):
        tg, machine = setup
        req = MapRequest(task_graph=tg, machine=machine, algorithms="UG")
        assert req.algorithms == ("UG",)

    def test_empty_algorithms_rejected(self, setup):
        tg, machine = setup
        with pytest.raises(ValueError):
            MapRequest(task_graph=tg, machine=machine, algorithms=())

    def test_grouping_seed_defaults_to_seed(self, setup):
        tg, machine = setup
        req = MapRequest(task_graph=tg, machine=machine, seed=9)
        assert req.effective_grouping_seed == 9
        req = MapRequest(task_graph=tg, machine=machine, seed=9, grouping_seed=2)
        assert req.effective_grouping_seed == 2


class TestMappingService:
    def test_unknown_algorithm(self, setup):
        tg, machine = setup
        with pytest.raises(ValueError):
            MappingService().map(
                MapRequest(task_graph=tg, machine=machine, algorithms="BEST")
            )

    def test_map_requires_single_algorithm(self, setup):
        tg, machine = setup
        with pytest.raises(ValueError):
            MappingService().map(
                MapRequest(task_graph=tg, machine=machine, algorithms=("UG", "UWH"))
            )

    @pytest.mark.parametrize("algo", EXTENDED_MAPPER_NAMES)
    def test_parity_with_legacy_facade(self, setup, algo):
        """Shim and direct service calls agree bit-for-bit.

        This pins the facade contract (TwoPhaseMapper delegates without
        altering requests); parity with the *pre-registry* pipeline is
        pinned separately by tests/test_kernels_golden.py, whose goldens
        were generated from the legacy implementation.
        """
        tg, machine = setup
        legacy = TwoPhaseMapper(algorithm=algo, seed=3).map(tg, machine)
        resp = MappingService().map(
            MapRequest(task_graph=tg, machine=machine, algorithms=algo, seed=3)
        )
        np.testing.assert_array_equal(resp.fine_gamma, legacy.fine_gamma)
        np.testing.assert_array_equal(resp.coarse_gamma, legacy.coarse_gamma)

    def test_stage_times_reported(self, setup):
        tg, machine = setup
        resp = MappingService().map(
            MapRequest(task_graph=tg, machine=machine, algorithms="UWH", seed=0)
        )
        assert "grouping" in resp.stage_times
        assert "placement:greedy" in resp.stage_times
        assert "refine:wh" in resp.stage_times
        assert all(t >= 0 for t in resp.stage_times.values())

    def test_evaluate_attaches_metrics(self, setup):
        tg, machine = setup
        resp = MappingService().map(
            MapRequest(
                task_graph=tg, machine=machine, algorithms="UG", evaluate=True
            )
        )
        assert resp.metrics is not None and resp.metrics.wh > 0

    def test_hop_table_cached(self, setup):
        _, machine = setup
        service = MappingService()
        a = service.hop_table(machine)
        b = service.hop_table(machine)
        assert a is b
        s = service.cache.stats("hop_table")
        assert (s.hits, s.misses) == (1, 1)

    def test_precomputed_groups_injected(self, setup):
        tg, machine = setup
        service = MappingService()
        groups = service.grouping(tg, machine, seed=5)
        resp = MappingService().map(
            MapRequest(
                task_graph=tg, machine=machine, algorithms="UG", seed=5, groups=groups
            )
        )
        assert resp.grouping_cached
        assert resp.prep_time == 0.0


class TestBatchCaching:
    def test_grouping_computed_once_across_algorithms(self, setup, monkeypatch):
        """The headline batching guarantee, asserted by call counting."""
        tg, machine = setup
        import repro.mapping.pipeline as pipeline_mod

        calls = []
        real = pipeline_mod.prepare_groups

        def counting(*args, **kwargs):
            calls.append(kwargs.get("seed"))
            return real(*args, **kwargs)

        monkeypatch.setattr(pipeline_mod, "prepare_groups", counting)

        service = MappingService()
        responses = service.map_batch(
            MapRequest(
                task_graph=tg,
                machine=machine,
                algorithms=("UG", "UWH", "UMC", "UMMC", "SMAP"),
                seed=2,
            )
        )
        assert len(responses) == 5
        # One shared grouping for all five sharing algorithms.
        assert len(calls) == 1
        stats = service.cache.stats("grouping")
        # The plan's grouping node takes the single miss; every sharing
        # algorithm's stage execution hits.
        assert stats.misses == 1 and stats.hits == 5
        # All five rode the same grouping vector.
        for r in responses[1:]:
            np.testing.assert_array_equal(
                r.result.group_of_task, responses[0].result.group_of_task
            )

    def test_tmap_runs_its_own_grouping(self, setup, monkeypatch):
        tg, machine = setup
        import repro.mapping.pipeline as pipeline_mod

        calls = []
        real = pipeline_mod.prepare_groups

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(pipeline_mod, "prepare_groups", counting)
        service = MappingService()
        service.map_batch(
            MapRequest(
                task_graph=tg, machine=machine, algorithms=("UG", "TMAP"), seed=2
            )
        )
        # UG's shared grouping + TMAP's private re-partition.
        assert len(calls) == 2

    def test_def_baseline_shared_with_tmap(self, setup):
        tg, machine = setup
        service = MappingService()
        service.map_batch(
            MapRequest(
                task_graph=tg, machine=machine, algorithms=("DEF", "TMAP"), seed=2
            )
        )
        stats = service.cache.stats("def_baseline")
        assert stats.misses <= 1

    def test_batch_of_requests_shares_cache(self, setup):
        tg, machine = setup
        service = MappingService()
        reqs = [
            MapRequest(task_graph=tg, machine=machine, algorithms="UG", seed=2),
            MapRequest(task_graph=tg, machine=machine, algorithms="UWH", seed=2),
        ]
        responses = service.map_batch(reqs)
        assert [r.algorithm for r in responses] == ["UG", "UWH"]
        stats = service.cache.stats("grouping")
        assert stats.misses == 1 and stats.hits == 2

    def test_umc_ummc_share_initial_route_table(self, setup):
        """UMC and UMMC refine the same placement → one route enumeration."""
        tg, machine = setup
        service = MappingService()
        service.map_batch(
            MapRequest(
                task_graph=tg, machine=machine, algorithms=("UMC", "UMMC"), seed=2
            )
        )
        stats = service.cache.stats("route_table")
        assert stats.hits >= 1  # UMMC reused UMC's initial table
        # ...and the batched path still equals the standalone runs.
        solo = MappingService()
        for algo in ("UMC", "UMMC"):
            r = solo.map(
                MapRequest(task_graph=tg, machine=machine, algorithms=algo, seed=2)
            )
            b = service.map(
                MapRequest(task_graph=tg, machine=machine, algorithms=algo, seed=2)
            )
            np.testing.assert_array_equal(r.result.fine_gamma, b.result.fine_gamma)


class TestArtifactCache:
    def test_get_or_compute_and_stats(self):
        cache = ArtifactCache()
        assert cache.get_or_compute("ns", "k", lambda: 41) == 41
        assert cache.get_or_compute("ns", "k", lambda: 42) == 41
        s = cache.stats("ns")
        assert (s.hits, s.misses, s.size) == (1, 1, 1)
        assert len(cache) == 1

    def test_put_get_clear(self):
        cache = ArtifactCache()
        cache.put("a", 1, "x")
        cache.put("b", 2, "y")
        assert cache.get("a", 1) == "x"
        assert cache.get("a", "missing", default="d") == "d"
        cache.clear("a")
        assert cache.get("a", 1) is None
        assert cache.get("b", 2) == "y"
        cache.clear()
        assert len(cache) == 0

    def test_format_stats(self):
        cache = ArtifactCache()
        assert cache.format_stats() == "(empty)"
        cache.get_or_compute("ns", 1, lambda: 0)
        assert "ns: 0 hits / 1 misses" in cache.format_stats()

    def test_fingerprints_content_based(self, setup):
        tg, machine = setup
        a = np.arange(10)
        assert fingerprint_arrays(a) == fingerprint_arrays(a.copy())
        assert fingerprint_arrays(a) != fingerprint_arrays(a + 1)
        # dtype/shape are part of the content
        assert fingerprint_arrays(a) != fingerprint_arrays(a.astype(np.float64))
        assert fingerprint_arrays(a) != fingerprint_arrays(a.reshape(2, 5))
        assert task_graph_key(tg) == task_graph_key(tg)
        assert machine_key(machine) == machine_key(machine)


class TestLegacyShims:
    def test_get_mapper_unknown(self):
        with pytest.raises(ValueError):
            get_mapper("nope")
        with pytest.raises(ValueError):
            TwoPhaseMapper(algorithm="BEST")

    def test_mapper_names_preserved(self):
        assert MAPPER_NAMES == ("DEF", "TMAP", "SMAP", "UG", "UWH", "UMC", "UMMC")
        assert EXTENDED_MAPPER_NAMES == MAPPER_NAMES + ("UTH", "UWHF")


class TestCli:
    def test_cli_list(self, capsys):
        from repro.api.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in MAPPER_NAMES:
            assert name in out

    def test_cli_list_json(self, capsys):
        from repro.api.cli import main

        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["UWH"]["stages"] == ["partition", "greedy", "wh"]

    def test_cli_map_smoke(self, capsys):
        from repro.api.cli import main

        rc = main(
            [
                "map",
                "--matrix",
                "cage15_like",
                "--algos",
                "DEF,UG,UWH",
                "--procs",
                "32",
                "--ppn",
                "4",
                "--json",
                "--stats",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["algorithm"] for r in payload["results"]] == ["DEF", "UG", "UWH"]
        for r in payload["results"]:
            assert r["metrics"]["WH"] > 0
        # UWH reused UG's grouping inside the batch.
        assert payload["cache_stats"]["grouping"]["hits"] >= 1
        # The stats hook exposes the LRU accounting fields.
        for s in payload["cache_stats"].values():
            assert {"hits", "misses", "size", "evictions", "bytes"} <= set(s)
        assert payload["cache_total_bytes"] > 0

    def test_cli_map_bounded_cache(self, capsys):
        from repro.api.cli import main

        rc = main(
            [
                "map",
                "--matrix",
                "cage15_like",
                "--algos",
                "UG,UWH,UMC",
                "--procs",
                "32",
                "--ppn",
                "4",
                "--cache-entries",
                "2",
                "--json",
                "--stats",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["algorithm"] for r in payload["results"]] == ["UG", "UWH", "UMC"]
        total_stored = sum(s["size"] for s in payload["cache_stats"].values())
        assert total_stored <= 2
        assert sum(s["evictions"] for s in payload["cache_stats"].values()) >= 1

    def test_cli_map_unknown_algo_errors(self, capsys):
        from repro.api.cli import main

        assert main(["map", "--matrix", "cage15_like", "--algos", "NOPE"]) == 2
        assert "unknown mapper" in capsys.readouterr().err

    def test_cli_map_unknown_matrix_errors(self, capsys):
        from repro.api.cli import main

        assert main(["map", "--matrix", "no_such", "--algos", "UG"]) == 2
        assert "unknown matrix" in capsys.readouterr().err
