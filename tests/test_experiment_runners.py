"""Smoke tests for every figure/table runner at micro scale.

These exercise the exact code paths the benchmark harness uses, on a
deliberately tiny profile, so harness regressions surface in the unit
suite rather than at benchmark time.
"""

import pytest

from repro.experiments import (
    format_fig1,
    format_fig2,
    format_fig3,
    format_fig4,
    format_fig5,
    format_regression,
    format_table1,
    run_fig1,
    run_fig2,
    run_fig4,
    run_fig5,
    run_regression,
    run_table1,
)
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import ExperimentProfile

MICRO = ExperimentProfile(
    name="micro",
    rows_per_unit=300,
    proc_counts=(16, 32),
    procs_per_node=4,
    fragmentation=0.3,
    alloc_seeds=(0,),
    corpus_names=("cage15_like", "rgg_n23_like"),
    repetitions=2,
)


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache(MICRO)


class TestRunners:
    def test_fig1(self, cache):
        r = run_fig1(MICRO, cache)
        assert r.values[(16, "PATOH", "TV")] == pytest.approx(1.0)
        out = format_fig1(r)
        assert "PATOH" in out and "MSV" in out

    def test_fig2_and_fig3(self, cache):
        r = run_fig2(MICRO, cache)
        for m in ("TH", "WH", "MMC", "MC"):
            assert r.values[(16, "DEF", m)] == pytest.approx(1.0)
        assert all(t > 0 for t in r.times.values())
        assert "DEF" in format_fig2(r)
        assert "TMAP" in format_fig3(r)

    def test_fig4(self, cache):
        r = run_fig4("cage15_like", MICRO, cache)
        assert r.values[("PATOH", "DEF", "time")] == pytest.approx(1.0)
        assert r.num_procs == 32
        assert "KAFFPA" in format_fig4(r)

    def test_fig4_rejects_non_flagship(self, cache):
        with pytest.raises(ValueError):
            run_fig4("ecology_like", MICRO, cache)

    def test_fig5(self, cache):
        r = run_fig5("cage15_like", MICRO, cache, iterations=10)
        assert r.iterations == 10
        assert r.values[("PATOH", "DEF", "TH")] == pytest.approx(1.0)
        assert "SpMV" in format_fig5(r)

    def test_table1(self, cache):
        r = run_table1(MICRO, cache)
        apps = {k[0] for k in r.rows}
        assert apps == {"cage_spmv", "cage_comm", "rgg_comm"}
        gm = r.gmean("cage_spmv")
        assert set(gm) == {"TMAP", "UG", "UWH", "UMC", "UMMC"}
        assert all(0.1 < v < 10 for v in gm.values())
        assert "Gmean" in format_table1(r)

    def test_regression(self, cache):
        r = run_regression(MICRO, cache)
        assert r.num_rows > 0
        assert all(c >= 0 for c in r.comm_only.coefficients.values())
        assert "Pearson" in format_regression(r)


class TestCli:
    def test_cli_fig1(self, capsys):
        from repro.experiments.__main__ import main

        # The CLI builds its own cache; use the smoke profile for speed.
        rc = main(["fig1", "--profile", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_cli_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig9"])
