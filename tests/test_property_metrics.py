"""Property-based tests on metric identities (hypothesis).

These pin down the Sec.-II relationships that the whole evaluation rests
on, over randomized workloads, mappings and torus shapes:

* ``Σ_e Congestion(e) = TH`` (the identity behind AMC = TH / |Etm|);
* ``Σ_e VolumeLoad(e) = WH`` when bandwidths are 1;
* route enumeration agrees with hop distances everywhere;
* evaluate_mapping is invariant to edge-list ordering.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.task_graph import TaskGraph
from repro.metrics.mapping import evaluate_mapping, link_congestion
from repro.topology.machine import Machine
from repro.topology.torus import Torus3D

DIMS = st.sampled_from([(3, 3, 3), (4, 3, 2), (5, 2, 2), (2, 4, 4)])


def make_instance(dims, n_tasks, seed):
    torus = Torus3D(dims)
    machine = Machine(torus, list(range(torus.num_nodes)), procs_per_node=1)
    rng = np.random.default_rng(seed)
    m = 5 * n_tasks
    src = rng.integers(0, n_tasks, m)
    dst = rng.integers(0, n_tasks, m)
    keep = src != dst
    tg = TaskGraph.from_edges(
        n_tasks, src[keep], dst[keep], rng.uniform(0.5, 4.0, keep.sum())
    )
    gamma = rng.choice(torus.num_nodes, size=n_tasks, replace=False)
    return tg, machine, gamma


@settings(max_examples=40, deadline=None)
@given(DIMS, st.integers(3, 10), st.integers(0, 100_000))
def test_property_congestion_sums_to_th(dims, n_tasks, seed):
    tg, machine, gamma = make_instance(dims, n_tasks, seed)
    msgs, _ = link_congestion(tg, machine, gamma)
    metrics = evaluate_mapping(tg, machine, gamma)
    assert msgs.sum() == pytest.approx(metrics.th)
    if metrics.used_links:
        assert metrics.amc == pytest.approx(metrics.th / metrics.used_links)


@settings(max_examples=40, deadline=None)
@given(DIMS, st.integers(3, 10), st.integers(0, 100_000))
def test_property_volume_load_sums_to_wh(dims, n_tasks, seed):
    tg, machine, gamma = make_instance(dims, n_tasks, seed)
    _, vols = link_congestion(tg, machine, gamma)
    metrics = evaluate_mapping(tg, machine, gamma)
    assert vols.sum() == pytest.approx(metrics.wh)


@settings(max_examples=30, deadline=None)
@given(DIMS, st.integers(3, 8), st.integers(0, 100_000))
def test_property_metrics_order_invariant(dims, n_tasks, seed):
    """Shuffling the edge construction order must not change any metric."""
    torus = Torus3D(dims)
    machine = Machine(torus, list(range(torus.num_nodes)), procs_per_node=1)
    rng = np.random.default_rng(seed)
    m = 4 * n_tasks
    src = rng.integers(0, n_tasks, m)
    dst = rng.integers(0, n_tasks, m)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    vol = rng.uniform(0.5, 3.0, src.shape[0])
    gamma = rng.choice(torus.num_nodes, size=n_tasks, replace=False)

    a = TaskGraph.from_edges(n_tasks, src, dst, vol)
    perm = rng.permutation(src.shape[0])
    b = TaskGraph.from_edges(n_tasks, src[perm], dst[perm], vol[perm])
    ma = evaluate_mapping(a, machine, gamma)
    mb = evaluate_mapping(b, machine, gamma)
    assert ma.th == pytest.approx(mb.th)
    assert ma.wh == pytest.approx(mb.wh)
    assert ma.mmc == pytest.approx(mb.mmc)
    assert ma.mc == pytest.approx(mb.mc)
    assert ma.used_links == mb.used_links


@settings(max_examples=40, deadline=None)
@given(DIMS, st.integers(0, 100_000))
def test_property_mc_scales_linearly_with_volume(dims, seed):
    """Doubling all volumes doubles WH and MC, leaves TH and MMC fixed."""
    tg, machine, gamma = make_instance(dims, 6, seed)
    doubled = TaskGraph.from_edges(
        tg.num_tasks, *(lambda s, d, v: (s, d, 2 * v))(*tg.graph.edge_list())
    )
    m1 = evaluate_mapping(tg, machine, gamma)
    m2 = evaluate_mapping(doubled, machine, gamma)
    assert m2.wh == pytest.approx(2 * m1.wh)
    assert m2.mc == pytest.approx(2 * m1.mc)
    assert m2.th == pytest.approx(m1.th)
    assert m2.mmc == pytest.approx(m1.mmc)
