"""Golden + backend-parity tests for the HIER and SFC mapper families.

The families registered by this PR (hierarchical per-dimension
partitioning à la Schulz & Woydt; geometric SFC curve-zip placement à
la Deveci et al.) are pinned the same way the paper algorithms are:

* ``tests/data/golden_families.json`` records fine/coarse Γ and metrics
  for every (scenario, family) pair on the scenarios of
  ``test_kernels_golden`` — uniform, heterogeneous-capacity and
  disconnected workloads (``python tests/test_mapping_families.py``
  regenerates; do NOT regenerate unless a behaviour change is intended
  and reviewed);
* every execution backend — ``serial``, ``thread``, ``process`` —
  must reproduce those goldens byte for byte.

Plus structural properties the goldens cannot express: placements are
capacity-feasible bijections, the curve orders are grid-adjacent walks,
and the families ride the shared grouping in the batch planner.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import test_kernels_golden as scenarios_mod  # noqa: E402

from repro.api import MapRequest, MappingService, build_plan, get_spec  # noqa: E402
from repro.mapping.hier import hierarchical_map  # noqa: E402
from repro.mapping.pipeline import FAMILY_MAPPER_NAMES, prepare_groups  # noqa: E402
from repro.mapping.sfc import sfc_map  # noqa: E402
from repro.util.sfc import gray3d_order, snake3d_order  # noqa: E402

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_families.json"
)


def _scenario_requests():
    """One multi-request batch: every golden scenario × the families."""
    return [
        MapRequest(
            task_graph=tg,
            machine=machine,
            algorithms=FAMILY_MAPPER_NAMES,
            seed=3,
            evaluate=True,
            tag=name,
        )
        for name, tg, machine, _ in scenarios_mod.scenarios()
    ]


def _run_all():
    """Serial reference run; returns the golden record dict."""
    record = {}
    for response in MappingService().map_batch(_scenario_requests()):
        record[f"{response.tag}/{response.algorithm}"] = {
            "fine_gamma": response.fine_gamma.tolist(),
            "coarse_gamma": response.coarse_gamma.tolist(),
            "wh": response.metrics.wh,
            "mc": response.metrics.mc,
            "mmc": response.metrics.mmc,
        }
    return record


@pytest.fixture(scope="module")
def golden():
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(
            "golden file missing; run `python tests/test_mapping_families.py` "
            "to generate it"
        )
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _assert_matches_golden(responses, golden):
    assert len(responses) == len(golden)
    for r in responses:
        key = f"{r.tag}/{r.algorithm}"
        want = golden[key]
        np.testing.assert_array_equal(
            r.fine_gamma,
            np.asarray(want["fine_gamma"], dtype=np.int64),
            err_msg=f"fine Γ diverged for {key}",
        )
        np.testing.assert_array_equal(
            r.coarse_gamma,
            np.asarray(want["coarse_gamma"], dtype=np.int64),
            err_msg=f"coarse Γ diverged for {key}",
        )
        assert r.metrics.wh == want["wh"], f"WH diverged for {key}"
        assert r.metrics.mc == want["mc"], f"MC diverged for {key}"
        assert r.metrics.mmc == want["mmc"], f"MMC diverged for {key}"


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_family_goldens_on_every_backend(golden, backend, kernel_backend):
    """HIER/SFC goldens are byte-identical on all execution backends.

    Crossed with the kernel-backend axis: the numba kernels must
    reproduce the goldens bit for bit on every execution backend too
    (``use_backend`` mirrors the choice into the environment, so the
    process backend's workers inherit it).
    """
    responses = MappingService().map_batch(
        _scenario_requests(), backend=backend, workers=2
    )
    _assert_matches_golden(responses, golden)


def test_family_goldens_across_store_tiers(golden, store_tier, tmp_path):
    """Goldens are byte-identical whichever tier carries the artifacts.

    The process backend round-trips groupings and route tables through
    the artifact store, so this is the end-to-end proof that the
    shared-memory segment codec and the mmap disk reads reproduce the
    disk tier — and the pre-tier goldens — bit for bit.
    """
    responses = MappingService().map_batch(
        _scenario_requests(),
        backend="process",
        workers=2,
        store_dir=str(tmp_path / store_tier),
        store_tier=store_tier,
    )
    _assert_matches_golden(responses, golden)


class TestPlacementProperties:
    @pytest.fixture(scope="class")
    def coarse_setups(self):
        """(coarse graph, machine) per golden scenario, shared grouping."""
        out = []
        for name, tg, machine, _ in scenarios_mod.scenarios():
            group_of_task, coarse = prepare_groups(tg, machine, seed=3)
            out.append((name, coarse, machine))
        return out

    def test_bijection_and_capacity(self, coarse_setups):
        """Both families place exactly one group per allocated node."""
        for name, coarse, machine in coarse_setups:
            for gamma in (
                hierarchical_map(coarse, machine, seed=3),
                sfc_map(coarse, machine),
            ):
                assert sorted(gamma.tolist()) == sorted(
                    machine.alloc_nodes.tolist()
                ), name
                caps = machine.node_capacities()
                assert np.all(
                    coarse.graph.vertex_weights <= caps[gamma] + 1e-9
                ), name

    def test_group_count_mismatch_rejected(self, coarse_setups):
        _, coarse, machine = coarse_setups[0]
        with pytest.raises(ValueError):
            sfc_map(scenarios_mod._random_task_graph(5, 12, seed=1), machine)
        with pytest.raises(ValueError):
            hierarchical_map(
                scenarios_mod._random_task_graph(5, 12, seed=1), machine
            )

    def test_deterministic(self, coarse_setups):
        _, coarse, machine = coarse_setups[0]
        np.testing.assert_array_equal(
            hierarchical_map(coarse, machine, seed=3),
            hierarchical_map(coarse, machine, seed=3),
        )
        np.testing.assert_array_equal(
            sfc_map(coarse, machine), sfc_map(coarse, machine)
        )


class TestCurveOrders:
    @pytest.mark.parametrize("dims", [(4, 4, 2), (2, 8, 4), (1, 1, 1), (4, 1, 2)])
    def test_gray_order_single_bit_steps(self, dims):
        """Power-of-two grids: every step flips one bit of one coordinate."""
        order = gray3d_order(dims)
        n = dims[0] * dims[1] * dims[2]
        assert sorted(order.tolist()) == list(range(n))
        nx, ny, _ = dims
        for a, b in zip(order[:-1], order[1:]):
            deltas = [
                abs(a % nx - b % nx),
                abs((a // nx) % ny - (b // nx) % ny),
                abs(a // (nx * ny) - b // (nx * ny)),
            ]
            changed = [d for d in deltas if d]
            assert len(changed) == 1  # exactly one coordinate moves...
            assert changed[0] & (changed[0] - 1) == 0  # ...by a power of two

    def test_gray_differs_from_snake_on_pow2_grids(self):
        assert not np.array_equal(gray3d_order((4, 4, 2)), snake3d_order((4, 4, 2)))

    def test_gray_falls_back_to_snake(self):
        np.testing.assert_array_equal(
            gray3d_order((5, 3, 2)), snake3d_order((5, 3, 2))
        )

    def test_gray_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            gray3d_order((0, 2, 2))


class TestRegistryIntegration:
    def test_families_registered_with_specs(self):
        for name in FAMILY_MAPPER_NAMES:
            spec = get_spec(name)
            assert "grouping" in spec.consumes  # rides the shared grouping
        assert get_spec("HIERWH").refine == ("wh",)
        assert get_spec("SFCWH").refine == ("wh",)
        assert get_spec("HIER").placement == "hier"
        assert get_spec("SFC").placement == "sfc"

    def test_families_share_grouping_in_plan(self):
        """One grouping node feeds UG and both families in a batch."""
        _, tg, machine, _ = scenarios_mod.scenarios()[0]
        plan = build_plan(
            MapRequest(
                task_graph=tg,
                machine=machine,
                algorithms=("UG",) + FAMILY_MAPPER_NAMES,
                seed=3,
            )
        )
        groupings = [n for n in plan.nodes if n.kind == "grouping"]
        assert len(groupings) == 1
        for node in plan.nodes:
            if node.kind == "algo":
                assert groupings[0].index in node.deps

    def test_sweep_accepts_family_entries(self):
        """The Fig. 3 sweep constructor carries extended mapper lists."""
        from repro.experiments.fig2 import sweep_requests
        from repro.experiments.harness import WorkloadCache
        from repro.experiments.profiles import ExperimentProfile

        profile = ExperimentProfile(
            name="families-test",
            rows_per_unit=60,
            proc_counts=(16,),
            procs_per_node=4,
            fragmentation=0.3,
            alloc_seeds=(0,),
            corpus_names=("cage15_like",),
            repetitions=1,
        )
        mappers = ("DEF", "UG") + FAMILY_MAPPER_NAMES
        requests = sweep_requests(
            profile, WorkloadCache(profile), mappers=mappers
        )
        assert all(r.algorithms == mappers for r in requests)


if __name__ == "__main__":
    data = _run_all()
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
    print(f"wrote {len(data)} golden entries to {GOLDEN_PATH}")
