"""Tests for the mapping base helpers (Mapping, validation, expansion)."""

import numpy as np
import pytest

from repro.graph.task_graph import TaskGraph
from repro.mapping.base import (
    Mapping,
    expand_mapping,
    group_targets,
    validate_mapping,
    wh_of,
)
from repro.topology.machine import Machine
from repro.topology.torus import Torus3D


@pytest.fixture()
def machine():
    return Machine(Torus3D((3, 3, 3)), [0, 1, 2, 3], procs_per_node=4)


class TestValidate:
    def test_accepts_valid(self, machine):
        validate_mapping(np.array([0, 1, 2, 3]), machine)

    def test_rejects_unallocated(self, machine):
        with pytest.raises(ValueError):
            validate_mapping(np.array([0, 26]), machine)

    def test_rejects_out_of_torus(self, machine):
        with pytest.raises(ValueError):
            validate_mapping(np.array([0, 100]), machine)

    def test_capacity_check(self, machine):
        # two groups of weight 3 on one capacity-4 node: overcommitted.
        with pytest.raises(ValueError):
            validate_mapping(
                np.array([0, 0]), machine, group_weights=np.array([3.0, 3.0])
            )
        # weight 2+2 fits exactly.
        validate_mapping(np.array([0, 0]), machine, group_weights=np.array([2.0, 2.0]))


class TestHelpers:
    def test_expand_mapping(self):
        gamma = np.array([10, 20, 30])
        groups = np.array([0, 0, 1, 2, 2])
        assert list(expand_mapping(groups, gamma)) == [10, 10, 20, 30, 30]

    def test_group_targets(self, machine):
        assert list(group_targets(machine)) == [4.0, 4.0, 4.0, 4.0]

    def test_mapping_copy_independent(self, machine):
        m = Mapping(np.array([0, 1]), machine)
        c = m.copy()
        c.gamma[0] = 3
        assert m.gamma[0] == 0

    def test_wh_of_counts_directed_edges(self, machine):
        tg = TaskGraph.from_edges(2, [0], [1], [5.0])
        gamma = np.array([0, 1])  # adjacent nodes: 1 hop
        assert wh_of(tg, machine, gamma) == 5.0

    def test_wh_of_zero_when_colocated(self, machine):
        tg = TaskGraph.from_edges(2, [0], [1], [5.0])
        assert wh_of(tg, machine, np.array([2, 2])) == 0.0
