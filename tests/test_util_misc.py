"""Tests for rng, sfc, validation and timing utilities."""

import numpy as np
import pytest

from repro.util.rng import mix_seed, seeded_rng, spawn_seeds
from repro.util.sfc import hilbert2d_order, sfc_node_order, snake3d_order
from repro.util.timing import Timer
from repro.util.validation import (
    check_array_1d,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
    check_same_length,
)


class TestRng:
    def test_seeded_rng_deterministic(self):
        a = seeded_rng(42).random(5)
        b = seeded_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_seeded_rng_passthrough(self):
        g = np.random.default_rng(1)
        assert seeded_rng(g) is g

    def test_spawn_seeds_distinct(self):
        seeds = spawn_seeds(7, 50)
        assert len(set(seeds)) == 50

    def test_spawn_seeds_salt_families_differ(self):
        assert spawn_seeds(7, 5, salt=1) != spawn_seeds(7, 5, salt=2)

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_mix_seed_sensitive_to_both_args(self):
        assert mix_seed(1, 2) != mix_seed(2, 1)
        assert mix_seed(1, 1) != mix_seed(1, 2)


class TestSfc:
    @pytest.mark.parametrize("dims", [(2, 2, 2), (3, 4, 5), (1, 1, 7), (4, 4, 1)])
    def test_snake_is_permutation(self, dims):
        order = snake3d_order(dims)
        n = dims[0] * dims[1] * dims[2]
        assert sorted(order.tolist()) == list(range(n))

    def test_snake_consecutive_adjacent(self):
        dims = (4, 3, 2)
        order = snake3d_order(dims)
        nx, ny, _ = dims
        for a, b in zip(order[:-1], order[1:]):
            ca = np.array([a % nx, (a // nx) % ny, a // (nx * ny)])
            cb = np.array([b % nx, (b // nx) % ny, b // (nx * ny)])
            assert np.abs(ca - cb).sum() == 1

    def test_snake_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            snake3d_order((0, 2, 2))

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_hilbert_is_permutation(self, k):
        order = hilbert2d_order(k)
        assert sorted(order.tolist()) == list(range(4**k))

    def test_hilbert_consecutive_adjacent(self):
        k = 3
        n = 1 << k
        order = hilbert2d_order(k)
        for a, b in zip(order[:-1], order[1:]):
            ax, ay = a % n, a // n
            bx, by = b % n, b // n
            assert abs(ax - bx) + abs(ay - by) == 1

    def test_hilbert_negative_raises(self):
        with pytest.raises(ValueError):
            hilbert2d_order(-1)

    @pytest.mark.parametrize("dims", [(4, 4, 4), (8, 8, 3), (3, 5, 2)])
    def test_sfc_node_order_permutation(self, dims):
        order = sfc_node_order(dims)
        assert sorted(order.tolist()) == list(range(dims[0] * dims[1] * dims[2]))


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1.0)
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0.0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1e-9)

    def test_check_in_range(self):
        check_in_range("x", 0.5, 0, 1)
        with pytest.raises(ValueError):
            check_in_range("x", 2, 0, 1)

    def test_check_probability(self):
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_array_1d(self):
        out = check_array_1d("a", [1, 2, 3], length=3, dtype=np.float64)
        assert out.dtype == np.float64
        with pytest.raises(ValueError):
            check_array_1d("a", [[1, 2]])
        with pytest.raises(ValueError):
            check_array_1d("a", [1, 2], length=3)

    def test_check_same_length(self):
        check_same_length(["a", "b"], [[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            check_same_length(["a", "b"], [[1], [1, 2]])


class TestTimer:
    def test_accumulates_laps(self):
        t = Timer()
        with t:
            sum(range(100))
        with t:
            sum(range(100))
        assert len(t.laps) == 2
        assert t.elapsed == pytest.approx(sum(t.laps))

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0 and t.laps == []
