"""Network serving front end: protocol, fairness, coalescing, SLOs.

Pins the contracts of :mod:`repro.serve`:

* the length-prefixed-JSON protocol round-trips frames and rejects
  malformed/oversized input with the one PlanError-shaped error object;
* ``requests_from_entries`` is the single parse/validate layer — the
  ``map-batch --follow`` CLI and the network server reject identical
  garbage with identical error dicts;
* :class:`FairQueue` implements weighted fair queuing: a flooding
  tenant cannot starve a quiet one, weights skew service proportionally,
  idle tenants earn no retroactive credit;
* the real-socket server (ephemeral port) answers happy-path requests
  **byte-identically** to a direct ``MappingService.map_batch`` call,
  coalesces N concurrent identical requests into exactly one dispatch
  with exactly one grouping-stage computation, sheds load with
  structured ``overloaded`` errors when the admission queue is full,
  expires queued deadlines without touching the engine, and propagates
  in-flight deadlines into per-node timeouts;
* the ``serve`` / ``stats`` CLI subcommands drive a real server.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from collections import OrderedDict

import pytest

from repro.api import MappingService
from repro.api.fault import PlanError
from repro.api.registry import register_mapper, unregister_mapper
from repro.api.stages import PLACEMENT_STAGES
from repro.serve import (
    FairQueue,
    LatencyHistogram,
    MappingServer,
    ProtocolError,
    RollingWindow,
    ServeClient,
    ThreadedServer,
    canonical_result,
    error_payload,
    parse_address,
    requests_from_entries,
    response_payload,
    summarize_latencies,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    parse_stream_line,
    recv_frame,
    send_frame,
)

#: Small, fast workload every server test maps (~10 ms end to end).
ENTRY = {
    "matrix": "cage12_like",
    "algos": "UG",
    "procs": 16,
    "ppn": 2,
    "rows_per_unit": 40,
    "seed": 0,
}


class _QueueItem:
    """Minimal stand-in for a _Ticket in FairQueue unit tests."""

    def __init__(self, tenant, cost=1):
        self.tenant = tenant
        self.cost = cost


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestLatencyHistogram:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_s=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_s=2.0, max_s=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_per_decade=0)

    def test_empty_summary(self):
        assert LatencyHistogram().summary() == {"count": 0}

    def test_percentiles_bounded_by_observed_extremes(self):
        h = LatencyHistogram()
        for s in (0.010, 0.020, 0.030, 0.040):
            h.observe(s)
        assert h.count == 4
        assert 0.010 <= h.percentile(0.5) <= 0.040
        assert h.percentile(1.0) == pytest.approx(0.040)
        s = h.summary()
        assert s["count"] == 4
        assert s["mean_ms"] == pytest.approx(25.0)
        assert s["max_ms"] == pytest.approx(40.0)
        assert s["p50_ms"] <= s["p95_ms"] <= s["p99_ms"] <= s["max_ms"]

    def test_out_of_range_observations_clamp(self):
        h = LatencyHistogram(min_s=1e-3, max_s=1.0)
        h.observe(-5.0)  # clamps to 0, lands in first bucket
        h.observe(50.0)  # overflow bucket
        assert h.count == 2
        assert h.percentile(1.0) == pytest.approx(50.0)

    def test_merge_requires_same_layout_and_is_exact(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for s in (0.01, 0.02):
            a.observe(s)
        for s in (0.03, 0.04):
            b.observe(s)
        a.merge(b)
        assert a.count == 4
        assert a.max_seen == pytest.approx(0.04)
        with pytest.raises(ValueError):
            a.merge(LatencyHistogram(buckets_per_decade=5))

    def test_exact_summary_matches_histogram_keys(self):
        exact = summarize_latencies([0.01, 0.02, 0.03])
        h = LatencyHistogram()
        for s in (0.01, 0.02, 0.03):
            h.observe(s)
        assert set(exact) == set(h.summary())
        assert exact["p99_ms"] == pytest.approx(30.0)
        assert summarize_latencies([]) == {"count": 0}


class TestRollingWindow:
    def test_rate_decays_with_the_clock(self):
        now = [0.0]
        w = RollingWindow(window_s=10.0, clock=lambda: now[0])
        for _ in range(5):
            w.observe()
        assert w.count() == 5
        assert w.rate() == pytest.approx(0.5)
        now[0] = 11.0  # everything aged out
        assert w.count() == 0
        with pytest.raises(ValueError):
            RollingWindow(window_s=0)


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


class TestFraming:
    def test_sync_round_trip(self):
        a, b = socket.socketpair()
        try:
            payload = {"op": "map", "entries": [dict(ENTRY)], "id": 7}
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame({"x": 1})[:3])  # truncated header
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_announcement_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_json_body_rejected(self):
        a, b = socket.socketpair()
        try:
            body = b"\xff\xfenot json"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestErrorShape:
    def test_matches_plan_error_dict(self):
        plan = PlanError(kind="timeout", message="m", node="n").as_dict()
        proto = ProtocolError("m", kind="timeout", node="n").as_dict()
        assert set(plan) == set(proto)
        assert proto["kind"] == "timeout"
        assert error_payload("overloaded", "full")["kind"] == "overloaded"
        assert set(error_payload("x", "y")) == set(plan)


class TestParseLayer:
    def test_stream_line_variants(self):
        kind, payload = parse_stream_line('{"defaults": {"procs": 32}}')
        assert kind == "defaults" and payload == {"procs": 32}
        kind, payload = parse_stream_line('{"matrix": "m"}')
        assert kind == "batch" and payload == [{"matrix": "m"}]
        kind, payload = parse_stream_line('[{"matrix": "a"}, {"matrix": "b"}]')
        assert kind == "batch" and len(payload) == 2
        with pytest.raises(ProtocolError):
            parse_stream_line("not json")
        with pytest.raises(ProtocolError):
            parse_stream_line('{"defaults": 3}')

    @pytest.mark.parametrize(
        "entries",
        [
            [],
            "nope",
            [42],
            [{"algos": "UG"}],  # no matrix
            [{"matrix": "no-such-matrix"}],
            [{"matrix": "cage12_like", "algos": "NOPE"}],
            [{"matrix": "cage12_like", "algos": []}],
            [{"matrix": "cage12_like", "algos": 7}],
            [{"matrix": "cage12_like", "procs": "many"}],
            [{"matrix": "cage12_like", "procs": 7, "ppn": 2}],  # not divisible
        ],
    )
    def test_all_malformed_inputs_raise_protocol_error(self, entries):
        with pytest.raises(ProtocolError) as info:
            requests_from_entries(entries, {}, OrderedDict())
        # Every rejection serializes to the one error shape.
        d = info.value.as_dict()
        assert d["kind"] == "bad_request"
        assert d["message"]

    def test_defaults_layering_and_workload_reuse(self):
        workloads = OrderedDict()
        reqs = requests_from_entries(
            [dict(ENTRY), {**ENTRY, "tag": "x"}],
            {"delta": 4},
            workloads,
        )
        assert len(reqs) == 2
        assert len(workloads) == 1  # identical workload built once
        assert reqs[0].delta == 4 and reqs[1].delta == 4
        assert reqs[0].tag == 0 and reqs[1].tag == "x"
        assert reqs[0].task_graph is reqs[1].task_graph

    def test_canonical_result_drops_timing_only(self):
        service = MappingService()
        reqs = requests_from_entries([dict(ENTRY)], {}, OrderedDict())
        payload = response_payload(service.map_batch(reqs)[0])
        canon = canonical_result(payload)
        assert "map_time_s" not in canon and "prep_time_s" not in canon
        assert canon["metrics"] == payload["metrics"]
        assert canon["mapping_fp"] == payload["mapping_fp"]
        assert isinstance(payload["mapping_fp"], int)


class TestParseAddress:
    def test_round_trip(self):
        assert parse_address("127.0.0.1:8765") == ("127.0.0.1", 8765)

    @pytest.mark.parametrize("bad", ["nohost", ":1", "h:", "h:x"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


# ---------------------------------------------------------------------------
# weighted fair queuing
# ---------------------------------------------------------------------------


class TestFairQueue:
    def test_validation(self):
        with pytest.raises(ValueError):
            FairQueue(default_weight=0)
        with pytest.raises(ValueError):
            FairQueue({"a": -1.0})

    def test_flooding_tenant_cannot_starve_quiet_one(self):
        q = FairQueue()
        for _ in range(50):
            q.push(_QueueItem("flood"))
        q.push(_QueueItem("quiet"))
        order = [q.pop().tenant for _ in range(len(q))]
        # The quiet tenant is served second, not fifty-first.
        assert order.index("quiet") == 1
        assert len(order) == 51

    def test_weights_skew_service_proportionally(self):
        q = FairQueue({"gold": 3.0, "bronze": 1.0})
        for _ in range(12):
            q.push(_QueueItem("gold"))
            q.push(_QueueItem("bronze"))
        first8 = [q.pop().tenant for _ in range(8)]
        # 3:1 weights -> ~3 gold per bronze in any prefix.
        assert first8.count("gold") == 6
        assert first8.count("bronze") == 2

    def test_idle_tenant_earns_no_retroactive_credit(self):
        q = FairQueue()
        for _ in range(10):
            q.push(_QueueItem("busy"))
        drained = [q.pop().tenant for _ in range(10)]
        assert drained == ["busy"] * 10
        # "sleeper" was idle the whole time; it re-enters at the current
        # virtual time and must interleave, not pre-empt everything.
        for _ in range(3):
            q.push(_QueueItem("busy"))
            q.push(_QueueItem("sleeper"))
        order = [q.pop().tenant for _ in range(6)]
        assert order[:2] in (["busy", "sleeper"], ["sleeper", "busy"])

    def test_cost_advances_virtual_time(self):
        q = FairQueue()
        q.push(_QueueItem("big", cost=10))
        q.push(_QueueItem("big", cost=10))
        q.push(_QueueItem("small", cost=1))
        q.push(_QueueItem("small", cost=1))
        first = q.pop()  # tie -> "big" by name
        assert first.tenant == "big"
        # big burned 10 units of vtime; both smalls go before big again.
        assert [q.pop().tenant for _ in range(3)] == ["small", "small", "big"]

    def test_depths_and_empty_pop(self):
        q = FairQueue()
        assert q.depths() == {}
        with pytest.raises(IndexError):
            q.pop()
        q.push(_QueueItem("t"))
        assert q.depths() == {"t": 1}


# ---------------------------------------------------------------------------
# real-socket integration
# ---------------------------------------------------------------------------


def _direct_reference(entries, defaults=None):
    """Canonical results of the same entries through the sync service."""
    reqs = requests_from_entries(list(entries), defaults or {}, OrderedDict())
    responses = MappingService().map_batch(reqs, on_error="partial")
    return [canonical_result(response_payload(r)) for r in responses]


class TestServerIntegration:
    def test_happy_path_is_byte_identical_to_direct_service(self):
        with ThreadedServer(backend="thread", workers=2) as ts:
            with ServeClient(*ts.address, tenant="t0") as client:
                assert client.ping()
                reply = client.map([dict(ENTRY)])
        assert reply["ok"] is True
        assert reply["coalesced"] == 1
        assert reply["dispatch"] == 1
        got = [canonical_result(r) for r in reply["results"]]
        assert got == _direct_reference([dict(ENTRY)])
        # The fingerprint is the wire-level mapping identity.
        assert got[0]["mapping_fp"] == _direct_reference([dict(ENTRY)])[0]["mapping_fp"]

    def test_coalescing_folds_identical_requests_into_one_computation(self):
        """The ISSUE's acceptance criterion: N concurrent identical
        requests -> one dispatch, one grouping-stage execution, all
        responses byte-identical."""
        n = 5
        replies = [None] * n
        with ThreadedServer(
            backend="thread",
            workers=2,
            coalesce_window=0.4,
            max_batch=16,
            max_in_flight=1,
        ) as ts:
            barrier = threading.Barrier(n)

            def worker(i):
                with ServeClient(*ts.address, tenant=f"c{i}") as client:
                    barrier.wait(timeout=30)
                    replies[i] = client.map([dict(ENTRY)])

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServeClient(*ts.address) as client:
                stats = client.stats()

        assert all(r["ok"] for r in replies)
        # Exactly one engine dispatch folded the burst...
        assert stats["counters"]["dispatches"] == 1
        assert stats["coalesce"]["coalesced_requests"] == n
        assert [r["coalesced"] for r in replies] == [n] * n
        # ...and the planner computed the shared grouping exactly once.
        assert stats["cache"]["grouping"]["misses"] == 1
        assert stats["cache"]["grouping"]["hits"] >= n - 1
        # All five clients got byte-identical mappings.
        canons = [[canonical_result(r) for r in reply["results"]] for reply in replies]
        assert all(c == canons[0] for c in canons)
        assert canons[0] == _direct_reference([dict(ENTRY)])

    def test_load_shed_when_queue_full(self):
        n = 10
        replies = [None] * n
        with ThreadedServer(
            backend="thread",
            workers=2,
            max_pending=2,
            coalesce_window=0.2,
            max_batch=1,
            max_in_flight=1,
        ) as ts:
            barrier = threading.Barrier(n)

            def worker(i):
                with ServeClient(*ts.address, tenant=f"c{i}") as client:
                    barrier.wait(timeout=30)
                    replies[i] = client.map([dict(ENTRY)])

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServeClient(*ts.address) as client:
                stats = client.stats()

        shed = [r for r in replies if not r["ok"]]
        served = [r for r in replies if r["ok"]]
        assert served, "someone must be answered"
        assert shed, "admission control must shed past max_pending"
        for r in shed:
            assert r["error"]["kind"] == "overloaded"
            assert "queue_depth" in r
            assert set(r["error"]) == set(error_payload("x", "y"))
        assert stats["counters"]["shed"] == len(shed)
        assert stats["counters"]["completed"] == len(served)

    def test_queued_deadline_expires_without_execution(self):
        with ThreadedServer(
            backend="thread",
            workers=2,
            coalesce_window=0.3,
            max_in_flight=1,
        ) as ts:
            with ServeClient(*ts.address) as client:
                # The window guarantees >= 0.3 s of queueing; a 1 ms
                # deadline must expire there.
                reply = client.map([dict(ENTRY)], deadline_s=0.001)
                stats = client.stats()
        assert reply["ok"] is False
        assert reply["error"]["kind"] == "timeout"
        assert "expired" in reply["error"]["message"]
        assert stats["counters"]["deadline_expired"] == 1
        # Never dispatched: the engine was not touched for this ticket.
        assert stats["counters"]["dispatches"] == 0

    def test_deadline_mid_plan_becomes_node_timeout(self):
        from repro.api import ExecutorPool

        @register_mapper("SLEEPYSRV", description="sleeps, then places greedily")
        def sleepy(ctx):
            time.sleep(5.0)
            return PLACEMENT_STAGES["greedy"](ctx)  # pragma: no cover

        entry = {**ENTRY, "algos": "SLEEPYSRV"}
        try:
            # A persistent pool: the spawn-per-call thread backend joins
            # its executor at batch end, which would hide the early
            # timeout reply behind the still-sleeping worker.
            with ExecutorPool("thread", workers=2) as pool:
                with ThreadedServer(pool=pool, coalesce_window=0.0) as ts:
                    with ServeClient(*ts.address) as client:
                        t0 = time.perf_counter()
                        reply = client.map([entry], deadline_s=0.5)
                        elapsed = time.perf_counter() - t0
        finally:
            unregister_mapper("SLEEPYSRV")
        # The request was dispatched, its deadline became the engine's
        # per-node timeout, and the reply came back as a structured
        # per-result timeout long before the 5 s sleep finished.
        assert reply["ok"] is True
        assert reply["results"][0]["ok"] is False
        assert reply["results"][0]["error"]["kind"] == "timeout"
        assert elapsed < 4.0

    def test_tenant_fairness_under_skewed_load(self):
        flood_n = 6
        replies = {}
        lock = threading.Lock()
        with ThreadedServer(
            backend="thread",
            workers=2,
            coalesce_window=0.4,
            max_batch=2,
            max_in_flight=1,
        ) as ts:
            barrier = threading.Barrier(flood_n + 1)

            def worker(tenant, key):
                with ServeClient(*ts.address, tenant=tenant) as client:
                    barrier.wait(timeout=30)
                    r = client.map([dict(ENTRY)])
                    with lock:
                        replies[key] = r

            threads = [
                threading.Thread(target=worker, args=("alpha", f"a{i}"))
                for i in range(flood_n)
            ] + [threading.Thread(target=worker, args=("beta", "b0"))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert all(r["ok"] for r in replies.values())
        beta_dispatch = replies["b0"]["dispatch"]
        alpha_dispatches = sorted(replies[f"a{i}"]["dispatch"] for i in range(flood_n))
        # WFQ: the quiet tenant rides the first batches; the flood's
        # tail waits behind its own virtual time.
        assert beta_dispatch <= 2
        assert alpha_dispatches[-1] >= 3
        assert beta_dispatch < alpha_dispatches[-1]

    def test_bad_requests_and_unknown_ops_are_structured(self):
        with ThreadedServer(backend="serial") as ts:
            with ServeClient(*ts.address) as client:
                r1 = client.map([{"matrix": "no-such-matrix"}])
                r2 = client.request({"op": "frobnicate"})
                r3 = client.request({"op": "map", "entries": []})
                stats = client.stats()
        for r in (r1, r2, r3):
            assert r["ok"] is False
            assert set(r["error"]) == set(error_payload("x", "y"))
        assert r1["error"]["kind"] == "bad_request"
        assert "unknown matrix" in r1["error"]["message"]
        assert r2["error"]["kind"] == "bad_request"
        assert r3["error"]["kind"] == "bad_request"
        assert stats["counters"]["bad_request"] == 3

    def test_garbage_bytes_reject_and_close_connection(self):
        with ThreadedServer(backend="serial") as ts:
            sock = socket.create_connection(ts.address, timeout=10)
            try:
                sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 5))
                reply = recv_frame(sock)
                assert reply["ok"] is False
                assert reply["id"] is None
                assert reply["error"]["kind"] == "bad_request"
                # The server dropped the unusable connection.
                assert recv_frame(sock) is None
            finally:
                sock.close()

    def test_shutdown_op_drains_and_stops(self):
        ts = ThreadedServer(backend="serial")
        ts.start()
        try:
            with ServeClient(*ts.address) as client:
                reply = client.map([dict(ENTRY)])
                assert reply["ok"]
                assert client.shutdown().get("stopping") is True
            # The loop thread exits on its own after the shutdown op.
            ts._thread.join(timeout=30)
            assert not ts._thread.is_alive()
            with pytest.raises(OSError):
                socket.create_connection(ts.address, timeout=2)
        finally:
            ts.stop()

    def test_requests_during_drain_get_shutdown_errors(self):
        with ThreadedServer(backend="serial") as ts:
            server = ts.server
            with ServeClient(*ts.address) as client:
                assert client.map([dict(ENTRY)])["ok"]
                server._stopping = True  # simulate drain window
                reply = client.map([dict(ENTRY)])
                server._stopping = False
        assert reply["ok"] is False
        assert reply["error"]["kind"] == "shutdown"

    def test_stats_payload_shape(self):
        with ThreadedServer(backend="thread", workers=2) as ts:
            with ServeClient(*ts.address) as client:
                client.map([dict(ENTRY)])
                stats = client.stats()
        assert stats["server"]["listening"] == list(ts.address)
        assert stats["queue"]["pending"] == 0
        assert stats["counters"]["accepted"] == 1
        assert stats["latency"]["map"]["count"] == 1
        assert stats["latency"]["map"]["p50_ms"] <= stats["latency"]["map"]["p99_ms"]
        assert stats["aio"]["max_in_flight"] == 2
        assert stats["pool"] is None  # no ExecutorPool in this config
        assert "grouping" in stats["cache"]


class TestServerConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            MappingServer(max_pending=0)
        with pytest.raises(ValueError):
            MappingServer(coalesce_window=-1)
        with pytest.raises(ValueError):
            MappingServer(max_batch=0)


# ---------------------------------------------------------------------------
# CLI subcommands
# ---------------------------------------------------------------------------


class TestServeCli:
    def test_stats_cli_against_live_server(self, capsys):
        from repro.api.cli import main

        with ThreadedServer(backend="thread", workers=2) as ts:
            with ServeClient(*ts.address) as client:
                assert client.map([dict(ENTRY)])["ok"]
            host, port = ts.address
            rc = main(["stats", "--connect", f"{host}:{port}"])
            human = capsys.readouterr().out
            rc_json = main(["stats", "--connect", f"{host}:{port}", "--json"])
            payload = json.loads(capsys.readouterr().out)
        assert rc == 0 and rc_json == 0
        assert "counters:" in human and "endpoint" in human
        assert payload["counters"]["completed"] == 1
        assert payload["latency"]["map"]["count"] == 1

    def test_stats_cli_unreachable_server_fails_cleanly(self, capsys):
        from repro.api.cli import main

        # Grab a port that is definitely closed.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = main(["stats", "--connect", f"127.0.0.1:{port}"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_subcommand_end_to_end(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys as _sys

        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ, PYTHONPATH=os.path.join(repo, "src"))
        proc = subprocess.Popen(
            [
                _sys.executable,
                "-m",
                "repro.api",
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--backend",
                "thread",
                "--workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            host, port = json.loads(line)["listening"]
            with ServeClient(host, port, tenant="cli-e2e") as client:
                reply = client.map([dict(ENTRY)])
            assert reply["ok"], reply
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
            stderr = proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert rc == 0, stderr
        assert "served 1 requests" in stderr
