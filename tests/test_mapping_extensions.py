"""Tests for the extension mappers: fine-level refinement and UTH."""

import numpy as np
import pytest

from repro.graph.task_graph import TaskGraph
from repro.mapping.default import DefaultMapper
from repro.mapping.pipeline import EXTENDED_MAPPER_NAMES, get_mapper, prepare_groups
from repro.mapping.refine_fine import FineWHRefiner, fine_wh_of, internode_volume
from repro.metrics.mapping import evaluate_mapping
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.torus import Torus3D


@pytest.fixture()
def setup():
    torus = Torus3D((4, 4, 2))
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=8, procs_per_node=3, fragmentation=0.3, seed=4)
    )
    rng = np.random.default_rng(2)
    n = 24
    m = 150
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    tg = TaskGraph.from_edges(n, src[keep], dst[keep], rng.uniform(1, 5, keep.sum()))
    return tg, machine


class TestFineRefiner:
    def test_wh_never_increases(self, setup):
        tg, machine = setup
        fine0 = DefaultMapper().map_ranks(tg.num_tasks, machine)
        wh0 = fine_wh_of(tg, machine, fine0)
        refined = FineWHRefiner().refine(tg, machine, fine0)
        assert fine_wh_of(tg, machine, refined) <= wh0 + 1e-9

    def test_capacities_preserved(self, setup):
        tg, machine = setup
        fine0 = DefaultMapper().map_ranks(tg.num_tasks, machine)
        refined = FineWHRefiner().refine(tg, machine, fine0)
        used = np.bincount(refined, minlength=machine.torus.num_nodes)
        assert np.all(used <= machine.node_capacities())
        assert used.sum() == tg.num_tasks

    def test_input_untouched(self, setup):
        tg, machine = setup
        fine0 = DefaultMapper().map_ranks(tg.num_tasks, machine)
        before = fine0.copy()
        FineWHRefiner().refine(tg, machine, fine0)
        assert np.array_equal(fine0, before)

    def test_internode_volume_helper(self, setup):
        tg, machine = setup
        # all ranks on one node -> zero internode volume
        one_node = np.full(tg.num_tasks, machine.alloc_nodes[0])
        assert internode_volume(tg, one_node) == 0.0
        spread = DefaultMapper().map_ranks(tg.num_tasks, machine)
        assert internode_volume(tg, spread) > 0


class TestExtendedMappers:
    def test_registry(self):
        assert "UTH" in EXTENDED_MAPPER_NAMES
        assert "UWHF" in EXTENDED_MAPPER_NAMES
        assert get_mapper("uth").algorithm == "UTH"

    @pytest.mark.parametrize("name", ["UTH", "UWHF"])
    def test_extended_mappers_valid(self, setup, name):
        tg, machine = setup
        groups = prepare_groups(tg, machine, seed=1)
        res = get_mapper(name, seed=1).map(tg, machine, groups=groups)
        assert machine.alloc_mask()[res.fine_gamma].all()
        used = np.bincount(res.fine_gamma, minlength=machine.torus.num_nodes)
        assert np.all(used <= machine.node_capacities())
        assert evaluate_mapping(tg, machine, res.fine_gamma).th >= 0

    def test_uwhf_not_worse_than_uwh_on_wh(self, setup):
        tg, machine = setup
        groups = prepare_groups(tg, machine, seed=1)
        uwh = get_mapper("UWH", seed=1).map(tg, machine, groups=groups)
        uwhf = get_mapper("UWHF", seed=1).map(tg, machine, groups=groups)
        assert fine_wh_of(tg, machine, uwhf.fine_gamma) <= fine_wh_of(
            tg, machine, uwh.fine_gamma
        ) + 1e-9
