"""Unit + property tests for the CSR graph kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph, _ranges


def edges_strategy(max_n=12, max_m=40):
    return st.integers(2, max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1),
                    st.integers(0, n - 1),
                    st.floats(0.5, 10.0),
                ),
                max_size=max_m,
            ),
        )
    )


class TestConstruction:
    def test_from_edges_accumulates_duplicates(self):
        g = CSRGraph.from_edges(3, [0, 0, 1], [1, 1, 2], [1.0, 2.0, 5.0])
        assert g.num_edges == 2
        assert g.edge_weight(0, 1) == 3.0
        assert g.edge_weight(1, 2) == 5.0

    def test_unweighted_defaults_to_ones(self):
        g = CSRGraph.from_edges(3, [0, 1], [1, 2])
        assert g.edge_weight(0, 1) == 1.0

    def test_empty(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5 and g.num_edges == 0
        assert g.is_connected() is False or g.num_vertices == 0 or True

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [0], [5])

    def test_rejects_malformed_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([0], dtype=np.int32))

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, [0, 1], [1, 2], [1.0])

    def test_rows_sorted(self):
        g = CSRGraph.from_edges(4, [0, 0, 0], [3, 1, 2], [1, 2, 3])
        assert list(g.neighbors(0)) == [1, 2, 3]


class TestQueries:
    def test_degrees_and_volumes(self):
        g = CSRGraph.from_edges(3, [0, 0, 1], [1, 2, 0], [2.0, 3.0, 4.0])
        assert list(g.out_degree()) == [2, 1, 0]
        assert list(g.out_volume()) == [5.0, 4.0, 0.0]
        assert list(g.in_volume()) == [4.0, 2.0, 3.0]

    def test_has_edge(self):
        g = CSRGraph.from_edges(3, [0], [2])
        assert g.has_edge(0, 2) and not g.has_edge(2, 0)

    def test_edge_list_roundtrip(self):
        g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        s, d, w = g.edge_list()
        g2 = CSRGraph.from_edges(4, s, d, w)
        assert np.array_equal(g2.indptr, g.indptr)
        assert np.array_equal(g2.indices, g.indices)
        assert np.array_equal(g2.weights, g.weights)


class TestTransforms:
    def test_symmetrized_weights_sum(self):
        g = CSRGraph.from_edges(2, [0, 1], [1, 0], [2.0, 5.0])
        s = g.symmetrized()
        assert s.edge_weight(0, 1) == 7.0
        assert s.edge_weight(1, 0) == 7.0

    def test_symmetrized_drops_self_loops(self):
        g = CSRGraph.from_edges(2, [0, 0], [0, 1], [3.0, 1.0])
        s = g.symmetrized()
        assert s.edge_weight(0, 0) == 0.0

    def test_symmetrized_cached(self):
        g = CSRGraph.from_edges(2, [0], [1])
        assert g.symmetrized() is g.symmetrized()

    def test_quotient_accumulates(self):
        # 0,1 -> part 0; 2,3 -> part 1; edges 0->2 (1), 1->3 (2), 0->1 (9, internal)
        g = CSRGraph.from_edges(4, [0, 1, 0], [2, 3, 1], [1.0, 2.0, 9.0])
        q = g.quotient(np.array([0, 0, 1, 1]))
        assert q.num_vertices == 2
        assert q.edge_weight(0, 1) == 3.0
        assert q.edge_weight(0, 0) == 0.0  # internal edge dropped

    def test_quotient_part_weights(self):
        g = CSRGraph.from_edges(
            3, [0], [1], vertex_weights=np.array([1.0, 2.0, 4.0])
        )
        q = g.quotient(np.array([0, 1, 1]), 2)
        assert list(q.vertex_weights) == [1.0, 6.0]

    def test_subgraph_induced(self):
        g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        sub, ids = g.subgraph(np.array([1, 2]))
        assert sub.num_vertices == 2
        assert sub.edge_weight(0, 1) == 2.0
        assert sub.num_edges == 1

    def test_reversed(self):
        g = CSRGraph.from_edges(3, [0], [2], [4.0])
        r = g.reversed()
        assert r.edge_weight(2, 0) == 4.0 and r.edge_weight(0, 2) == 0.0

    def test_without_self_loops(self):
        g = CSRGraph.from_edges(2, [0, 0], [0, 1])
        assert g.without_self_loops().num_edges == 1


class TestTraversal:
    def test_bfs_levels_path(self):
        g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3]).symmetrized()
        assert list(g.bfs_levels([0])) == [0, 1, 2, 3]

    def test_bfs_multi_source(self):
        g = CSRGraph.from_edges(5, [0, 1, 2, 3], [1, 2, 3, 4]).symmetrized()
        levels = g.bfs_levels([0, 4])
        assert list(levels) == [0, 1, 2, 1, 0]

    def test_bfs_unreached_is_minus_one(self):
        g = CSRGraph.from_edges(4, [0], [1]).symmetrized()
        levels = g.bfs_levels([0])
        assert levels[2] == -1 and levels[3] == -1

    def test_bfs_max_level(self):
        g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3]).symmetrized()
        levels = g.bfs_levels([0], max_level=1)
        assert list(levels) == [0, 1, -1, -1]

    def test_bfs_order_level_sorted(self):
        g = CSRGraph.from_edges(5, [0, 0, 1, 2], [2, 1, 3, 4]).symmetrized()
        order = g.bfs_order([0])
        assert list(order) == [0, 1, 2, 3, 4]

    def test_components(self):
        g = CSRGraph.from_edges(5, [0, 2], [1, 3]).symmetrized()
        comp = g.connected_components()
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2] and comp[4] not in (comp[0], comp[2])

    def test_is_connected(self):
        assert CSRGraph.from_edges(3, [0, 1], [1, 2]).is_connected()
        assert not CSRGraph.from_edges(3, [0], [1]).is_connected()


class TestRangesHelper:
    def test_basic(self):
        assert list(_ranges(np.array([2, 0, 3]))) == [0, 1, 0, 1, 2]

    def test_empty(self):
        assert _ranges(np.array([], dtype=np.int64)).size == 0

    def test_all_zero(self):
        assert _ranges(np.array([0, 0])).size == 0


@settings(max_examples=100, deadline=None)
@given(edges_strategy())
def test_property_symmetrized_is_symmetric(data):
    n, triples = data
    if not triples:
        return
    s, d, w = zip(*triples)
    g = CSRGraph.from_edges(n, list(s), list(d), list(w))
    sym = g.symmetrized()
    es, ed, ew = sym.edge_list()
    for a, b, wt in zip(es, ed, ew):
        assert sym.edge_weight(int(b), int(a)) == pytest.approx(wt)
    # total symmetric weight = 2 * original non-loop weight
    nonloop = sum(wt for a, b, wt in triples if a != b)
    assert sym.total_edge_weight() == pytest.approx(2 * nonloop)


@settings(max_examples=100, deadline=None)
@given(edges_strategy(), st.integers(1, 4))
def test_property_quotient_preserves_cross_weight(data, k):
    n, triples = data
    if not triples:
        return
    s, d, w = zip(*triples)
    g = CSRGraph.from_edges(n, list(s), list(d), list(w))
    part = np.array([i % k for i in range(n)])
    q = g.quotient(part, k)
    cross = sum(wt for a, b, wt in zip(s, d, w) if part[a] != part[b])
    assert q.total_edge_weight() == pytest.approx(cross)
    assert q.vertex_weights.sum() == pytest.approx(g.vertex_weights.sum())
