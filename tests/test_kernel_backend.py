"""Tests for the pluggable kernel-backend layer.

Pins the contracts of :mod:`repro.kernels.backend`:

* selection order — explicit name beats ``REPRO_KERNEL_BACKEND`` beats
  auto-detection — with unknown names rejected and unsatisfiable
  ``numba`` requests degrading to ``numpy`` with a recorded reason;
* dispatch parity — the kernels behind ``get_backend()`` reproduce the
  NumPy reference bit for bit on every backend (the golden and
  congestion property suites cross the same axis at system level);
* the warm-up lifecycle — :func:`warm_up` compiles the native set and
  bumps the per-process counter, and :class:`ExecutorPool` warms
  exactly **once per worker lifetime**: a second batch through the same
  pool must not re-warm (the no-JIT-re-warm-up acceptance criterion).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import ExecutorPool, MappingService, MapRequest
from repro.graph.csr import CSRGraph, expand_frontier
from repro.graph.task_graph import TaskGraph
from repro.kernels import backend as backend_mod
from repro.kernels.backend import (
    ENV_VAR,
    KERNEL_BACKENDS,
    KERNEL_NAMES,
    backend_info,
    get_backend,
    numba_available,
    resolve_backend,
    set_backend,
    use_backend,
    warm_up,
    warmup_count,
)
from repro.kernels.hoptable import hop_table_for
from repro.topology.allocation import AllocationSpec, SparseAllocator
from repro.topology.torus import Torus3D

needs_numba = pytest.mark.skipif(
    not numba_available(),
    reason="numba is not installed (pip install -e .[native])",
)


@pytest.fixture(autouse=True)
def _restore_backend():
    """Leave the process-wide backend and env exactly as found."""
    prev_active = backend_mod._active
    prev_env = os.environ.get(ENV_VAR)
    yield
    backend_mod._active = prev_active
    if prev_env is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = prev_env


class TestResolution:
    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numba")
        assert resolve_backend("numpy") == ("numpy", "numpy", None)

    def test_environment_beats_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        resolved, requested, reason = resolve_backend(None)
        assert (resolved, requested, reason) == ("numpy", "numpy", None)

    def test_auto_detects_from_availability(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        resolved, requested, reason = resolve_backend(None)
        assert requested == "auto"
        assert resolved == ("numba" if numba_available() else "numpy")
        assert reason is None  # auto never reports a fallback

    def test_unknown_name_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("gpu")
        monkeypatch.setenv(ENV_VAR, "cuda")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend(None)

    def test_unsatisfiable_numba_degrades_with_reason(self):
        resolved, requested, reason = resolve_backend("numba")
        assert requested == "numba"
        if numba_available():
            assert resolved == "numba" and reason is None
        else:
            assert resolved == "numpy"
            assert "numba is not installed" in reason

    def test_backend_info_shape(self):
        info = backend_info("numpy")
        assert info["backend"] == "numpy"
        assert info["requested"] == "numpy"
        assert info["fallback_reason"] is None
        assert info["numba_available"] == numba_available()


class TestActiveBackend:
    def test_numpy_backend_has_no_native_slots(self):
        be = set_backend("numpy")
        assert be.name == "numpy"
        assert all(getattr(be, slot) is None for slot in KERNEL_NAMES)
        assert be.info()["native_kernels"] == []

    @needs_numba
    def test_numba_backend_fills_every_slot(self):
        be = set_backend("numba")
        assert be.name == "numba"
        assert all(getattr(be, slot) is not None for slot in KERNEL_NAMES)
        assert be.info()["native_kernels"] == list(KERNEL_NAMES)

    def test_use_backend_mirrors_env_and_restores(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        outer = set_backend("numpy")
        with use_backend("numpy") as be:
            assert be.name == "numpy"
            assert os.environ[ENV_VAR] == "numpy"
            assert get_backend() is be
        assert ENV_VAR not in os.environ
        assert get_backend() is outer

    def test_get_backend_resolves_lazily(self):
        backend_mod._active = None
        assert get_backend().name in KERNEL_BACKENDS


class TestWarmUp:
    def test_warm_up_bumps_counter_and_records(self):
        before = warmup_count()
        be = set_backend("numpy")
        record = warm_up(be)
        assert warmup_count() == before + 1
        assert record["backend"] == "numpy"
        assert record["requested"] == "numpy"
        assert record["warmup_s"] >= 0.0
        assert record["kernels"] == {}  # nothing to compile on numpy
        assert record["seq"] == before + 1
        assert be.warmup is record

    @needs_numba
    def test_warm_up_compiles_every_native_kernel(self):
        record = warm_up(set_backend("numba"))
        assert set(record["kernels"]) == set(KERNEL_NAMES)
        for slot, entry in record["kernels"].items():
            assert entry["compiled"], f"{slot}: {entry}"
            assert entry["compile_s"] >= 0.0


class TestDispatchParity:
    """Direct per-kernel parity on whatever backend the axis supplies.

    The nested ``use_backend("numpy")`` gives the in-test reference, so
    on the numba leg this compares native output against the NumPy path
    on identical inputs.
    """

    def test_expand_frontier_matches_reference(self, kernel_backend):
        rng = np.random.default_rng(5)
        n, m = 40, 160
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        graph = CSRGraph.from_edges(
            n, src[keep], dst[keep], np.ones(int(keep.sum()))
        ).symmetrized()
        seen = np.zeros(n, dtype=bool)
        frontier = np.asarray([0, 3], dtype=np.int64)
        seen[frontier] = True
        seen_ref = seen.copy()
        got = expand_frontier(graph, frontier, seen)
        with use_backend("numpy"):
            want = expand_frontier(graph, frontier, seen_ref)
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(seen, seen_ref)

    def test_hop_table_dispatch_matches_reference(self, kernel_backend):
        table = hop_table_for(Torus3D((4, 3, 3)))
        rng = np.random.default_rng(9)
        a = rng.integers(0, 36, 50).astype(np.int64)
        b = rng.integers(0, 36, 50).astype(np.int64)
        got_pair = table.pairwise_hops(a, b)
        got_row = table.hops_to_many(7, b)
        with use_backend("numpy"):
            np.testing.assert_array_equal(got_pair, table.pairwise_hops(a, b))
            np.testing.assert_array_equal(got_row, table.hops_to_many(7, b))


@pytest.fixture()
def workload():
    """24-rank task graph on 8 nodes × 3 processors (4x4x2 torus)."""
    torus = Torus3D((4, 4, 2))
    machine = SparseAllocator(torus).allocate(
        AllocationSpec(num_nodes=8, procs_per_node=3, fragmentation=0.3, seed=4)
    )
    rng = np.random.default_rng(7)
    n, m = 24, 160
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    tg = TaskGraph.from_edges(
        n, src[keep], dst[keep], rng.integers(1, 6, int(keep.sum())).astype(float)
    )
    return MapRequest(
        task_graph=tg, machine=machine, algorithms=("UG", "UWH"), seed=2,
        evaluate=True,
    )


class TestPoolWarmup:
    def test_rejects_unknown_kernel_backend(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            ExecutorPool("thread", kernel_backend="gpu")

    def test_thread_pool_warms_once_per_lifetime(self, workload):
        """Two batches, one warm-up: no JIT re-warm on the second batch."""
        before = warmup_count()
        with ExecutorPool("thread", workers=2, kernel_backend="numpy") as pool:
            service = MappingService(pool=pool)
            assert warmup_count() == before  # lazy: no spawn, no warm-up
            service.map_batch(workload)
            assert warmup_count() == before + 1
            first = pool.stats()["kernel_backend"]
            service.map_batch(workload)
            assert warmup_count() == before + 1, "second batch re-warmed"
            second = pool.stats()["kernel_backend"]
        assert first["backend"] == "numpy"
        assert first["warmup"]["seq"] == before + 1
        assert second["warmup"] == first["warmup"]

    def test_thread_warmup_survives_executor_respawn(self, workload):
        """JIT state is process-wide: a torn-down-and-respawned executor
        must not re-warm — the warm-up is per *pool* lifetime, not per
        executor spawn."""
        before = warmup_count()
        with ExecutorPool("thread", workers=2, kernel_backend="numpy") as pool:
            service = MappingService(pool=pool)
            service.map_batch(workload)
            assert pool.configure(workers=3) is True  # tears workers down
            assert not pool.executor_alive
            service.map_batch(workload)
            assert pool.spawn_count == 2
            assert warmup_count() == before + 1

    def test_process_workers_warm_once_per_lifetime(self, workload):
        """Worker initializers warm exactly once; batches never re-warm."""
        with ExecutorPool("process", workers=2, kernel_backend="numpy") as pool:
            service = MappingService(pool=pool)
            service.map_batch(workload)
            first = pool.kernel_stats()
            service.map_batch(workload)
            second = pool.kernel_stats()
            assert pool.spawn_count == 1
        assert first["backend"] == "numpy"
        workers = first["workers"]
        assert workers, "no worker published a warm-up record"
        for pid, record in workers.items():
            assert record["pid"] == int(pid)
            assert record["backend"] == "numpy"
            assert record["warmup_s"] >= 0.0
        # Identical records after batch 2 — same pids, same ``warmed_at``
        # timestamps, same warm-up sequence numbers: no worker was
        # re-initialized and none re-warmed between batches.  (``seq``
        # is not asserted to be 1: fork-started workers inherit the
        # parent process's warm-up counter.)
        assert second["workers"] == workers

    @needs_numba
    def test_process_workers_compile_native_set(self, workload):
        with ExecutorPool("process", workers=2, kernel_backend="numba") as pool:
            MappingService(pool=pool).map_batch(workload)
            stats = pool.kernel_stats()
        assert stats["backend"] == "numba"
        for record in stats["workers"].values():
            assert set(record["kernels"]) == set(KERNEL_NAMES)
            assert all(k["compiled"] for k in record["kernels"].values())
