"""Tests for the experiment harness, profiles and corpus."""

import numpy as np
import pytest

from repro.data.corpus import CORPUS, FLAGSHIPS, load_corpus, load_matrix
from repro.experiments.harness import WorkloadCache
from repro.experiments.profiles import (
    PROFILES,
    get_profile,
    profile_from_env,
)


class TestCorpus:
    def test_25_matrices_9_classes(self):
        assert len(CORPUS) == 25
        assert len({e.group for e in CORPUS}) == 9

    def test_names_unique(self):
        names = [e.name for e in CORPUS]
        assert len(set(names)) == 25

    def test_flagships_exist(self):
        names = {e.name for e in CORPUS}
        assert set(FLAGSHIPS) <= names

    def test_load_matrix_scales(self):
        entry = CORPUS[0]
        small = load_matrix(entry, rows_per_unit=200)
        big = load_matrix(entry, rows_per_unit=400)
        assert big.num_rows == 2 * small.num_rows
        assert small.name == entry.name

    def test_load_corpus_subset(self):
        mats = load_corpus(100, names=FLAGSHIPS)
        assert [m.name for m in mats] == list(FLAGSHIPS)

    def test_load_corpus_unknown_name(self):
        with pytest.raises(ValueError):
            load_corpus(100, names=("nope",))


class TestProfiles:
    def test_registry(self):
        assert {"smoke", "ci", "small", "paper"} <= set(PROFILES)
        assert get_profile("ci").name == "ci"
        with pytest.raises(ValueError):
            get_profile("huge")

    def test_nodes_for(self):
        p = get_profile("ci")
        assert p.nodes_for(p.procs_per_node * 10) == 10
        with pytest.raises(ValueError):
            p.nodes_for(p.procs_per_node * 10 + 1)

    def test_profile_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert profile_from_env().name == "smoke"
        monkeypatch.delenv("REPRO_PROFILE")
        assert profile_from_env("ci").name == "ci"

    def test_paper_profile_matches_publication(self):
        p = get_profile("paper")
        assert p.proc_counts == (1024, 2048, 4096, 8192, 16384)
        assert p.procs_per_node == 16
        assert len(p.alloc_seeds) == 5


class TestHashKey:
    def test_full_width_no_truncation_collisions(self):
        from repro.experiments.harness import hash_key

        keys = [
            (name, tool, procs, alloc, 0)
            for name in ("cage15_like", "rgg_n23_like", "ecology_like")
            for tool in ("PATOH", "METIS", "SCOTCH")
            for procs in (16, 32, 64, 128, 256, 512, 1024)
            for alloc in range(5)
        ]
        digests = {hash_key(k) for k in keys}
        assert len(digests) == len(keys)  # 315 keys, no collisions
        # The digest uses the full 32-bit range, not the old 16-bit mask.
        assert max(digests) > 0xFFFF

    def test_stable_across_calls(self):
        from repro.experiments.harness import hash_key

        key = ("cage15_like", "PATOH", 64)
        assert hash_key(key) == hash_key(key)


class TestHarness:
    @pytest.fixture(scope="class")
    def cache(self):
        return WorkloadCache(get_profile("smoke"))

    def test_workload_build(self, cache):
        wl = cache.workload("cage15_like", "PATOH", 32)
        assert wl.task_graph.num_tasks == 32
        assert wl.partition_metrics.tv > 0
        assert wl.part.shape[0] == cache.matrix("cage15_like").num_rows

    def test_workload_cached(self, cache):
        a = cache.workload("cage15_like", "PATOH", 32)
        b = cache.workload("cage15_like", "PATOH", 32)
        assert a is b

    def test_machine_build(self, cache):
        m = cache.machine(32, 0)
        p = get_profile("smoke")
        assert m.num_alloc_nodes == 32 // p.procs_per_node
        assert m.total_procs == 32

    def test_machines_differ_by_seed(self, cache):
        a = cache.machine(32, 0).alloc_nodes
        b = cache.machine(32, 1).alloc_nodes
        assert not np.array_equal(a, b)

    def test_groups_capacity_exact(self, cache):
        groups, coarse = cache.groups("cage15_like", "PATOH", 32, 0)
        m = cache.machine(32, 0)
        assert np.array_equal(
            np.bincount(groups, minlength=m.num_alloc_nodes), m.capacities
        )
